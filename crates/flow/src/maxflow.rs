//! Dinic's maximum-flow algorithm with min-cut extraction.
//!
//! Capacities are `i128`; the exact-rational solvers scale their rational
//! capacities to integers before building the network, so every flow value
//! in the workspace is exact.

/// Sentinel capacity representing `+∞` (practically unbounded, chosen so
/// sums of many such edges cannot overflow `i128`).
pub const INF: i128 = i128::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i128,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network over `n` nodes supporting repeated max-flow queries.
///
/// # Examples
///
/// ```
/// use cmvrp_flow::FlowNetwork;
///
/// // Classic diamond: source 0, sink 3.
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 10);
/// net.add_edge(0, 2, 10);
/// net.add_edge(1, 3, 5);
/// net.add_edge(2, 3, 15);
/// assert_eq!(net.max_flow(0, 3), 15);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
    stats: FlowStats,
}

/// Always-on counters describing the work a [`FlowNetwork`] has done across
/// its [`FlowNetwork::max_flow`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// BFS layerings built (Dinic phases).
    pub bfs_rounds: u64,
    /// Augmenting (blocking-flow) paths pushed.
    pub augmenting_paths: u64,
}

impl FlowNetwork {
    /// Creates an empty network over `n` nodes (identified `0..n`).
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
            stats: FlowStats::default(),
        }
    }

    /// Work counters accumulated across all solves on this network.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// The solver's counters as a `cmvrp_obs` registry (`flow.*` names).
    pub fn metrics(&self) -> cmvrp_obs::Metrics {
        let mut m = cmvrp_obs::Metrics::new();
        m.add("flow.bfs_rounds", self.stats.bfs_rounds);
        m.add("flow.augmenting_paths", self.stats.augmenting_paths);
        m
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and returns
    /// an opaque handle usable with [`FlowNetwork::edge_flow`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i128) -> EdgeHandle {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "node out of range"
        );
        assert!(cap >= 0, "negative capacity");
        let fwd = self.graph[from].len();
        let bwd = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(Edge { to, cap, rev: bwd });
        self.graph[to].push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
        });
        EdgeHandle {
            from,
            index: fwd,
            original_cap: cap,
        }
    }

    /// BFS layering from `s` on the residual graph.
    fn bfs(&mut self, s: usize) {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
    }

    /// DFS blocking-flow augmentation.
    fn dfs(&mut self, v: usize, t: usize, f: i128) -> i128 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let (to, cap) = {
                let e = &self.graph[v][i];
                (e.to, e.cap)
            };
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    let rev = self.graph[v][i].rev;
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Computes the maximum flow from `s` to `t`, mutating residual
    /// capacities in place. Calling it again continues from the current
    /// residual state (useful for incremental capacity additions).
    ///
    /// # Panics
    ///
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i128 {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0i128;
        loop {
            self.bfs(s);
            self.stats.bfs_rounds += 1;
            if self.level[t] < 0 {
                return flow;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                self.stats.augmenting_paths += 1;
                flow += f;
            }
        }
    }

    /// After a [`FlowNetwork::max_flow`] call, returns the source side of a
    /// minimum `s`–`t` cut: all nodes reachable from `s` in the residual
    /// graph.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }

    /// The flow currently routed through the edge identified by `handle`
    /// (original capacity minus residual capacity).
    pub fn edge_flow(&self, handle: EdgeHandle) -> i128 {
        handle.original_cap - self.graph[handle.from][handle.index].cap
    }
}

/// Handle to an edge added with [`FlowNetwork::add_edge`], for reading back
/// per-edge flow after solving.
#[derive(Debug, Clone, Copy)]
pub struct EdgeHandle {
    from: usize,
    index: usize,
    original_cap: i128,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn stats_count_phases_and_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 5);
        net.add_edge(1, 3, 4);
        net.add_edge(2, 3, 2);
        assert_eq!(net.stats(), FlowStats::default());
        let f = net.max_flow(0, 3);
        let stats = net.stats();
        assert_eq!(f, 5);
        // Each unit-path push is bounded by the flow value; at least one
        // path and one BFS (plus the terminating BFS) must have happened.
        assert!(stats.augmenting_paths >= 2 && stats.augmenting_paths <= 5);
        assert!(stats.bfs_rounds >= 2);
        let m = net.metrics();
        assert_eq!(m.counter("flow.augmenting_paths"), stats.augmenting_paths);
        assert_eq!(m.counter("flow.bfs_rounds"), stats.bfs_rounds);
    }

    #[test]
    fn classic_example() {
        // CLRS-style network with known max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_separates_and_matches_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 5);
        net.add_edge(1, 3, 4);
        net.add_edge(2, 3, 2);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 5);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut value equals flow: edges crossing the cut.
        // 0->1 (3) crosses iff side[0] && !side[1]; here the cut is {0,2}
        // or {0,1,2} depending on saturation; just verify separation.
    }

    #[test]
    fn edge_flow_reporting() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 10);
        let b = net.add_edge(1, 2, 4);
        let f = net.max_flow(0, 2);
        assert_eq!(f, 4);
        assert_eq!(net.edge_flow(a), 4);
        assert_eq!(net.edge_flow(b), 4);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 0, 9);
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 1);
    }

    #[test]
    fn incremental_resolve() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 2), 5);
        // Saturated; a second call finds nothing more.
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn source_equals_sink_panics() {
        let mut net = FlowNetwork::new(1);
        let _ = net.max_flow(0, 0);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3x3 bipartite with a perfect matching.
        let mut net = FlowNetwork::new(8); // 0 src, 1-3 left, 4-6 right, 7 sink
        for l in 1..=3 {
            net.add_edge(0, l, 1);
            net.add_edge(l + 3, 7, 1);
        }
        net.add_edge(1, 4, 1);
        net.add_edge(1, 5, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(3, 6, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }
}
