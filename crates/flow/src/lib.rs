#![warn(missing_docs)]

//! LP/flow substrate for the CMVRP reproduction.
//!
//! Chapter 2 of the thesis characterizes the optimal off-line capacity
//! through the linear program (2.1) and its dual, culminating in
//! Lemma 2.2.2:
//!
//! > the value of LP (2.1) equals `max_T Σ_{x∈T} d(x) / |N_r(T)|`.
//!
//! This crate provides the machinery to compute **both sides of that
//! equality exactly** on finite instances:
//!
//! * [`maxflow`] — Dinic's max-flow algorithm over `i128` capacities with
//!   min-cut extraction.
//! * [`density`] — the right-hand side: maximum-density subset selection via
//!   exact-rational Dinkelbach iteration over project-selection min-cuts.
//! * [`transport`] — the left-hand side: the radius-constrained
//!   supply/demand transportation feasibility oracle (the primal).
//! * [`grid_density`] — grid-specialized graph builders, including the
//!   layered BFS gadget that replaces `Θ(n^ℓ·r^ℓ)` coverage edges by
//!   `Θ(n^ℓ·r·ℓ)` gadget edges.
//! * [`alpha_h`] — the 1-D `α → h` decomposition of Lemma 2.2.1
//!   (Figures 2.4/2.5), with machine-checked identities.
//!
//! # Examples
//!
//! ```
//! use cmvrp_flow::maxflow::FlowNetwork;
//!
//! let mut net = FlowNetwork::new(4);
//! net.add_edge(0, 1, 3);
//! net.add_edge(0, 2, 2);
//! net.add_edge(1, 3, 2);
//! net.add_edge(2, 3, 3);
//! assert_eq!(net.max_flow(0, 3), 4);
//! ```

pub mod alpha_h;
pub mod density;
pub mod grid_density;
pub mod maxflow;
pub mod mincost;
pub mod transport;

pub use density::{DensityProblem, DensityResult};
pub use grid_density::{max_density_over_grid, GridDensityResult};
pub use maxflow::{FlowNetwork, FlowStats};
pub use mincost::MinCostFlow;
pub use transport::{
    min_travel_transport, min_uniform_supply, transport_feasible, transport_flows, TransportFlow,
    TransportInstance,
};
