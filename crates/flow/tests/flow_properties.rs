//! Property tests for the flow substrate: max-flow/min-cut duality on
//! random networks, and min-cost optimality against exhaustive search.

// Property tests require the external `proptest` crate, which this
// workspace cannot fetch in its hermetic (offline) build. They are gated
// behind the off-by-default `proptest` cargo feature; enabling it also
// requires uncommenting the proptest dev-dependency (network needed).
#![cfg(feature = "proptest")]

use cmvrp_flow::mincost::MinCostFlow;
use cmvrp_flow::FlowNetwork;
use proptest::prelude::*;

/// A random small network description: edge list over `n` nodes.
fn network_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (3usize..8).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n, 0u8..12), 1..20);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-flow equals min-cut capacity (strong duality) on random graphs.
    #[test]
    fn max_flow_equals_cut_capacity((n, edges) in network_strategy()) {
        let mut net = FlowNetwork::new(n);
        let mut kept: Vec<(usize, usize, i128)> = Vec::new();
        for (u, v, c) in edges {
            if u != v {
                net.add_edge(u, v, c as i128);
                kept.push((u, v, c as i128));
            }
        }
        let s = 0;
        let t = n - 1;
        let flow = net.max_flow(s, t);
        let side = net.min_cut_source_side(s);
        prop_assert!(side[s]);
        prop_assert!(!side[t]);
        // Capacity of the returned cut equals the flow value.
        let cut: i128 = kept
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(flow, cut);
    }

    /// Min-cost flow reaches the max-flow value and never undercuts the
    /// naive lower bound `flow * min_edge_cost_on_some_path`.
    #[test]
    fn min_cost_flow_value_matches_dinic((n, edges) in network_strategy()) {
        let mut dinic = FlowNetwork::new(n);
        let mut mc = MinCostFlow::new(n);
        for (u, v, c) in &edges {
            if u != v {
                dinic.add_edge(*u, *v, *c as i128);
                mc.add_edge(*u, *v, *c as i128, (*c as i64 % 5) + 1);
            }
        }
        let want = dinic.max_flow(0, n - 1);
        let (got, cost) = mc.max_flow_min_cost(0, n - 1);
        prop_assert_eq!(got, want);
        prop_assert!(cost >= got); // every unit pays cost >= 1 per hop
    }

    /// Sending the flow in two stages costs the same as in one (greedy SSP
    /// paths are globally optimal per unit).
    #[test]
    fn staged_flow_costs_match((n, edges) in network_strategy()) {
        let build = || {
            let mut mc = MinCostFlow::new(n);
            for (u, v, c) in &edges {
                if u != v {
                    mc.add_edge(*u, *v, *c as i128, (*c as i64 % 7) + 1);
                }
            }
            mc
        };
        let mut whole = build();
        let (flow, cost) = whole.max_flow_min_cost(0, n - 1);
        if flow >= 2 {
            let half = flow / 2;
            let mut staged = build();
            let (f1, c1) = staged.flow_with_limit(0, n - 1, half);
            let (f2, c2) = staged.flow_with_limit(0, n - 1, flow - half);
            prop_assert_eq!(f1 + f2, flow);
            prop_assert_eq!(c1 + c2, cost);
        }
    }
}

/// Exhaustive optimality check on a tiny fixed family: enumerate all
/// integral flows on a 2-path network and compare.
#[test]
fn min_cost_is_exhaustively_optimal_on_two_paths() {
    // Two disjoint 2-edge paths from s to t with differing costs and caps.
    for cap_a in 0..4i128 {
        for cap_b in 0..4i128 {
            for cost_a in 1..4i64 {
                for cost_b in 1..4i64 {
                    let mut mc = MinCostFlow::new(4);
                    mc.add_edge(0, 1, cap_a, cost_a);
                    mc.add_edge(1, 3, cap_a, cost_a);
                    mc.add_edge(0, 2, cap_b, cost_b);
                    mc.add_edge(2, 3, cap_b, cost_b);
                    let (flow, cost) = mc.max_flow_min_cost(0, 3);
                    assert_eq!(flow, cap_a + cap_b);
                    // Brute force: route x on path A, rest on path B.
                    let mut best = i128::MAX;
                    for x in 0..=cap_a {
                        let y = flow - x;
                        if y <= cap_b {
                            best = best.min(x * 2 * cost_a as i128 + y * 2 * cost_b as i128);
                        }
                    }
                    assert_eq!(
                        cost, best,
                        "caps ({cap_a},{cap_b}) costs ({cost_a},{cost_b})"
                    );
                }
            }
        }
    }
}
