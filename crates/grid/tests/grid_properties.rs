//! Property tests for the grid substrate: the snake path, pairings, cube
//! partitions, and ball counts on randomized boxes.

// Property tests require the external `proptest` crate, which this
// workspace cannot fetch in its hermetic (offline) build. They are gated
// behind the off-by-default `proptest` cargo feature; enabling it also
// requires uncommenting the proptest dev-dependency (network needed).
#![cfg(feature = "proptest")]

use cmvrp_grid::{
    ball_size_clipped, ball_size_unbounded, pairing_in_cube, snake_order, Color, CubePartition,
    GridBounds, Point,
};
use proptest::prelude::*;

fn box_strategy() -> impl Strategy<Value = GridBounds<2>> {
    ((-5i64..5, 1i64..7), (-5i64..5, 1i64..7))
        .prop_map(|((x, w), (y, h))| GridBounds::new([x, y], [x + w - 1, y + h - 1]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The snake order is a Hamiltonian path of every box.
    #[test]
    fn snake_is_hamiltonian_on_random_boxes(b in box_strategy()) {
        let order = snake_order(&b);
        prop_assert_eq!(order.len() as u64, b.volume());
        for w in order.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, b.volume());
    }

    /// Pairings cover every vertex exactly once with adjacent bicolored
    /// pairs and at most one singleton.
    #[test]
    fn pairing_invariants(b in box_strategy()) {
        let pairing = pairing_in_cube(&b);
        prop_assert_eq!(pairing.vertex_count() as u64, b.volume());
        prop_assert_eq!(pairing.singleton_count() as u64, b.volume() % 2);
        let mut seen = std::collections::HashSet::new();
        for (a, partner) in pairing.pairs() {
            prop_assert!(seen.insert(*a));
            if let Some(p) = partner {
                prop_assert!(seen.insert(*p));
                prop_assert_eq!(a.manhattan(*p), 1);
                prop_assert_eq!(Color::of(*a), Color::Black);
                prop_assert_eq!(Color::of(*p), Color::White);
            }
        }
        prop_assert_eq!(seen.len() as u64, b.volume());
    }

    /// Cube partitions tile the grid: every point in exactly one cube, and
    /// cube bounds agree with cube_of.
    #[test]
    fn cube_partition_tiles(b in box_strategy(), side in 1u64..5) {
        let part = CubePartition::new(b, side);
        let mut covered = 0u64;
        for id in part.cubes() {
            let cube = part.cube_bounds(id);
            covered += cube.volume();
            for p in cube.iter() {
                prop_assert_eq!(part.cube_of(p), id);
            }
            // Clipped cubes never exceed the nominal side.
            prop_assert!(cube.extent(0) <= side && cube.extent(1) <= side);
        }
        prop_assert_eq!(covered, b.volume());
    }

    /// Clipped ball counts: interior balls match the closed form; any ball
    /// is bounded by it.
    #[test]
    fn ball_counts(r in 0u64..4, cx in -3i64..3, cy in -3i64..3) {
        let b = GridBounds::new([-20, -20], [20, 20]);
        let center = Point::new([cx, cy]);
        let clipped = ball_size_clipped(&b, center, r) as u128;
        prop_assert_eq!(clipped, ball_size_unbounded(2, r));
        // Near the corner the ball shrinks but never grows.
        let tight = GridBounds::new([-3, -3], [3, 3]);
        let small = ball_size_clipped(&tight, center, r) as u128;
        prop_assert!(small <= clipped);
    }

    /// Demand map algebra: totals track adds/sets under random operations.
    #[test]
    fn demand_bookkeeping(ops in prop::collection::vec(
        ((0i64..6, 0i64..6), 0u64..20, any::<bool>()), 1..40)
    ) {
        use cmvrp_grid::DemandMap;
        let mut m: DemandMap<2> = DemandMap::new();
        let mut shadow = std::collections::HashMap::new();
        for ((x, y), amount, is_set) in ops {
            let p = Point::new([x, y]);
            if is_set {
                m.set(p, amount);
                if amount == 0 {
                    shadow.remove(&p);
                } else {
                    shadow.insert(p, amount);
                }
            } else {
                m.add(p, amount);
                if amount > 0 {
                    *shadow.entry(p).or_insert(0) += amount;
                }
            }
        }
        prop_assert_eq!(m.total(), shadow.values().sum::<u64>());
        prop_assert_eq!(m.support_len(), shadow.len());
        for (p, want) in shadow {
            prop_assert_eq!(m.get(p), want);
        }
    }
}
