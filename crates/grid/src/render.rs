//! ASCII rendering of 2-D demand maps and dilations — for the CLI and for
//! eyeballing workloads in examples and bug reports.

use crate::bounds::GridBounds;
use crate::demand::DemandMap;
use crate::dilate::Dilation;
use crate::point::{pt2, Point};

/// Renders a 2-D demand map as a character grid: `.` for zero, `1`–`9` for
/// small demands, and letters for decades beyond (`a` = 10–19, `b` =
/// 20–29, …, `z`, then `#`). The y axis grows downward, x rightward.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{render_demand, DemandMap, GridBounds, pt2};
/// let mut d = DemandMap::new();
/// d.add(pt2(1, 0), 3);
/// let s = render_demand(&GridBounds::square(3), &d);
/// assert_eq!(s.lines().count(), 3);
/// assert!(s.contains('3'));
/// ```
pub fn render_demand(bounds: &GridBounds<2>, demand: &DemandMap<2>) -> String {
    render_cells(bounds, |p| glyph(demand.get(p)))
}

/// Renders a dilation (`N_r(T)`), marking seeds `@`, covered cells `+`,
/// and everything else `.`.
pub fn render_dilation(bounds: &GridBounds<2>, dilation: &Dilation<2>) -> String {
    render_cells(bounds, |p| match dilation.distance.get(&p) {
        Some(0) => '@',
        Some(_) => '+',
        None => '.',
    })
}

/// Generic cell renderer over a 2-D box.
pub fn render_cells(bounds: &GridBounds<2>, mut cell: impl FnMut(Point<2>) -> char) -> String {
    let mut out = String::with_capacity((bounds.volume() + bounds.extent(1)) as usize);
    for y in bounds.min()[1]..=bounds.max()[1] {
        for x in bounds.min()[0]..=bounds.max()[0] {
            out.push(cell(pt2(x, y)));
        }
        out.push('\n');
    }
    out
}

/// The single-character glyph for a demand magnitude.
fn glyph(d: u64) -> char {
    match d {
        0 => '.',
        1..=9 => (b'0' + d as u8) as char,
        10..=269 => (b'a' + ((d / 10 - 1) as u8).min(25)) as char,
        _ => '#',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dilate::dilate;

    #[test]
    fn glyphs() {
        assert_eq!(glyph(0), '.');
        assert_eq!(glyph(5), '5');
        assert_eq!(glyph(10), 'a');
        assert_eq!(glyph(29), 'b');
        assert_eq!(glyph(260), 'z');
        assert_eq!(glyph(1_000_000), '#');
    }

    #[test]
    fn demand_rendering_shape() {
        let b = GridBounds::square(4);
        let mut d = DemandMap::new();
        d.add(pt2(0, 0), 2);
        d.add(pt2(3, 3), 42);
        let s = render_demand(&b, &d);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        assert_eq!(lines[0].chars().next(), Some('2'));
        assert_eq!(lines[3].chars().nth(3), Some('d')); // 40-49 → 'd'
    }

    #[test]
    fn dilation_rendering_marks_seeds_and_halo() {
        let b = GridBounds::square(5);
        let n = dilate(&b, [pt2(2, 2)], 1);
        let s = render_dilation(&b, &n);
        assert_eq!(s.matches('@').count(), 1);
        assert_eq!(s.matches('+').count(), 4);
        assert_eq!(s.matches('.').count(), 20);
    }

    #[test]
    fn negative_coordinates() {
        let b = GridBounds::new([-1, -1], [1, 1]);
        let mut d = DemandMap::new();
        d.add(pt2(-1, -1), 7);
        let s = render_demand(&b, &d);
        assert!(s.starts_with('7'));
    }
}
