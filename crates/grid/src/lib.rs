#![warn(missing_docs)]

//! The `Z^ℓ` grid substrate for the CMVRP reproduction.
//!
//! The thesis (Gao, 2008) places one depot, one vehicle, and one potential
//! customer at every vertex of the `ℓ`-dimensional integer lattice, with the
//! Manhattan (L1) metric as the travel cost. This crate provides everything
//! the higher layers need from that geometry:
//!
//! * [`Point`] — a lattice point with const-generic dimension.
//! * [`GridBounds`] — a finite axis-aligned box of lattice points (the
//!   bounded stand-in for the infinite grid; see DESIGN.md on the
//!   substitution).
//! * [`ball`] — exact L1-ball cardinalities, both the closed-form unbounded
//!   count and clipped enumeration.
//! * [`dilate`] — the neighborhood `N_r(T)` of a set, via multi-source BFS.
//! * [`DemandMap`] — sparse integer demand `d(x)`, plus the dense 2-D array
//!   variant consumed by the paper's Algorithm 1.
//! * [`CubePartition`] — the `⌈ω⌉`-cube partition of Lemma 2.2.5.
//! * [`color`] — the chessboard coloring and black–white pairing used by the
//!   on-line strategy of Chapter 3.
//!
//! # Examples
//!
//! ```
//! use cmvrp_grid::{pt2, GridBounds, DemandMap};
//!
//! let bounds = GridBounds::square(8); // 8x8 grid, coordinates 0..8
//! let mut d = DemandMap::new();
//! d.add(pt2(3, 3), 10);
//! assert_eq!(d.total(), 10);
//! assert_eq!(pt2(0, 0).manhattan(pt2(3, 4)), 7);
//! assert!(bounds.contains(pt2(7, 7)));
//! ```

pub mod ball;
pub mod bounds;
pub mod color;
pub mod cubes;
pub mod demand;
pub mod dilate;
pub mod point;
pub mod render;

pub use ball::{ball_size_clipped, ball_size_unbounded};
pub use bounds::GridBounds;
pub use color::{pair_partner, pairing_in_cube, snake_order, Color, Pairing};
pub use cubes::{CubeId, CubePartition};
pub use demand::{DemandMap, DenseDemand, DenseDemand2D};
pub use dilate::{dilate, dilate_bruteforce, dilated_size, Dilation};
pub use point::{pt1, pt2, pt3, Point};
pub use render::{render_cells, render_demand, render_dilation};
