//! Exact cardinalities of L1 balls in `Z^D`.
//!
//! The quantity `|N_r(x)|` appears throughout the thesis: the examples of
//! §2.1 use `(2W+1)` (1-D within a line) and `(2W+1)²` (2-D), and the cube
//! characterization (Corollary 2.2.7) compares demand sums against
//! `ω·(3⌈ω⌉)^ℓ`. This module provides the closed-form count for the
//! unbounded lattice and the clipped count for a finite grid.

use crate::bounds::GridBounds;
use crate::point::Point;
use cmvrp_util::binomial;

/// Number of points of `Z^dim` within L1 distance `r` of a fixed point
/// (unbounded lattice).
///
/// Uses the Delannoy-type identity
/// `|B_r| = Σ_{k=0}^{min(dim,r)} 2^k · C(dim,k) · C(r,k)`.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::ball_size_unbounded;
/// assert_eq!(ball_size_unbounded(1, 3), 7);        // 2r+1
/// assert_eq!(ball_size_unbounded(2, 3), 25);       // 2r^2+2r+1
/// assert_eq!(ball_size_unbounded(3, 1), 7);        // octahedron
/// ```
pub fn ball_size_unbounded(dim: u32, r: u64) -> u128 {
    let mut total: u128 = 0;
    let kmax = (dim as u64).min(r);
    for k in 0..=kmax {
        total += (1u128 << k) * binomial(dim as u64, k) * binomial(r, k);
    }
    total
}

/// Number of points of `bounds` within L1 distance `r` of `center`
/// (clipped ball), by direct enumeration.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{ball_size_clipped, GridBounds, pt2};
/// let b = GridBounds::square(10);
/// assert_eq!(ball_size_clipped(&b, pt2(5, 5), 2), 13);
/// assert_eq!(ball_size_clipped(&b, pt2(0, 0), 2), 6);
/// ```
pub fn ball_size_clipped<const D: usize>(bounds: &GridBounds<D>, center: Point<D>, r: u64) -> u64 {
    bounds.ball(center, r).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt2;

    /// Brute-force count over a box comfortably containing the ball.
    fn brute_unbounded(dim: u32, r: u64) -> u128 {
        fn rec(dim: u32, r: i64) -> u128 {
            if dim == 0 {
                return 1;
            }
            let mut total = 0u128;
            for c in -r..=r {
                total += rec(dim - 1, r - c.abs());
            }
            total
        }
        rec(dim, r as i64)
    }

    #[test]
    fn formula_matches_brute_force() {
        for dim in 1..=4u32 {
            for r in 0..=8u64 {
                assert_eq!(
                    ball_size_unbounded(dim, r),
                    brute_unbounded(dim, r),
                    "dim={dim} r={r}"
                );
            }
        }
    }

    #[test]
    fn known_closed_forms() {
        // 1-D: 2r+1.
        for r in 0..20u64 {
            assert_eq!(ball_size_unbounded(1, r), (2 * r + 1) as u128);
        }
        // 2-D: 2r^2 + 2r + 1 (the diamond used in Example 3 of §2.1).
        for r in 0..20u64 {
            assert_eq!(ball_size_unbounded(2, r), (2 * r * r + 2 * r + 1) as u128);
        }
    }

    #[test]
    fn radius_zero_is_singleton() {
        for dim in 1..=5u32 {
            assert_eq!(ball_size_unbounded(dim, 0), 1);
        }
    }

    #[test]
    fn clipped_interior_matches_unbounded() {
        let b = GridBounds::square(50);
        for r in 0..=5u64 {
            assert_eq!(
                ball_size_clipped(&b, pt2(25, 25), r) as u128,
                ball_size_unbounded(2, r)
            );
        }
    }

    #[test]
    fn clipped_corner_is_quadrant() {
        let b = GridBounds::square(50);
        // At the corner only one quadrant of the diamond survives:
        // points with x,y >= 0 and x+y <= r, i.e. C(r+2, 2) of them.
        for r in 0..=6u64 {
            assert_eq!(
                ball_size_clipped(&b, pt2(0, 0), r) as u128,
                binomial(r + 2, 2)
            );
        }
    }
}
