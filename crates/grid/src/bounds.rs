//! Finite axis-aligned boxes of lattice points.
//!
//! The thesis works on the infinite grid `Z^ℓ`; the reproduction uses a
//! finite box and computes all neighborhood quantities with respect to the
//! *clipped* grid, which keeps the LP characterization exact on the finite
//! instance (see DESIGN.md, "Substitutions").

use crate::point::Point;

/// An axis-aligned box `{ x : min[i] <= x[i] <= max[i] }` of lattice points.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{GridBounds, pt2};
///
/// let b = GridBounds::square(4); // coordinates 0..=3 in both axes
/// assert_eq!(b.volume(), 16);
/// assert!(b.contains(pt2(3, 0)));
/// assert!(!b.contains(pt2(4, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridBounds<const D: usize> {
    min: [i64; D],
    max: [i64; D],
}

impl<const D: usize> GridBounds<D> {
    /// Creates bounds with inclusive corners `min` and `max`.
    ///
    /// # Panics
    ///
    /// Panics if `min[i] > max[i]` for any axis.
    pub fn new(min: [i64; D], max: [i64; D]) -> Self {
        for i in 0..D {
            assert!(
                min[i] <= max[i],
                "empty bounds on axis {i}: {} > {}",
                min[i],
                max[i]
            );
        }
        GridBounds { min, max }
    }

    /// The cube `[0, side)^D`.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn cube(side: u64) -> Self {
        assert!(side > 0, "cube side must be positive");
        GridBounds {
            min: [0; D],
            max: [side as i64 - 1; D],
        }
    }

    /// Inclusive minimum corner.
    pub fn min(&self) -> [i64; D] {
        self.min
    }

    /// Inclusive maximum corner.
    pub fn max(&self) -> [i64; D] {
        self.max
    }

    /// Side length along axis `i`.
    pub fn extent(&self, i: usize) -> u64 {
        (self.max[i] - self.min[i] + 1) as u64
    }

    /// Number of lattice points inside the box.
    pub fn volume(&self) -> u64 {
        (0..D).map(|i| self.extent(i)).product()
    }

    /// Whether `p` lies inside the box.
    pub fn contains(&self, p: Point<D>) -> bool {
        let c = p.coords();
        (0..D).all(|i| self.min[i] <= c[i] && c[i] <= self.max[i])
    }

    /// The point of the box nearest to `p` in Manhattan distance
    /// (componentwise clamp).
    pub fn clamp(&self, p: Point<D>) -> Point<D> {
        let mut c = p.coords();
        for (i, ci) in c.iter_mut().enumerate() {
            *ci = (*ci).clamp(self.min[i], self.max[i]);
        }
        Point::new(c)
    }

    /// Iterates every lattice point of the box in lexicographic order.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmvrp_grid::GridBounds;
    /// let b: GridBounds<2> = GridBounds::square(3);
    /// assert_eq!(b.iter().count(), 9);
    /// ```
    pub fn iter(&self) -> Iter<D> {
        Iter {
            bounds: *self,
            cursor: Some(self.min),
        }
    }

    /// Iterates the lattice points of the box within L1 distance `r` of
    /// `center` (the clipped ball `N_r(center) ∩ bounds`).
    pub fn ball(&self, center: Point<D>, r: u64) -> std::vec::IntoIter<Point<D>> {
        // Enumerate the bounding box of the ball and filter by distance; the
        // box has at most (2r+1)^D candidates which is fine for the radii
        // used here.
        let c = center.coords();
        let mut min = [0i64; D];
        let mut max = [0i64; D];
        for i in 0..D {
            min[i] = (c[i] - r as i64).max(self.min[i]);
            max[i] = (c[i] + r as i64).min(self.max[i]);
            if min[i] > max[i] {
                // Ball misses the box entirely.
                return Vec::new().into_iter();
            }
        }
        let pts: Vec<Point<D>> = GridBounds { min, max }
            .iter()
            .filter(|p| center.manhattan(*p) <= r)
            .collect();
        pts.into_iter()
    }

    /// The position of `p` in the lexicographic enumeration of the box
    /// (the order of [`GridBounds::iter`]): axis 0 is most significant.
    ///
    /// This is the canonical dense numbering used for vehicle/process ids,
    /// so sparse engines can name a vertex without materializing the grid.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the box.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmvrp_grid::GridBounds;
    /// let b: GridBounds<2> = GridBounds::square(3);
    /// for (i, p) in b.iter().enumerate() {
    ///     assert_eq!(b.index_of(p), i as u64);
    /// }
    /// ```
    pub fn index_of(&self, p: Point<D>) -> u64 {
        assert!(self.contains(p), "point {p} outside bounds");
        let c = p.coords();
        let mut idx = 0u64;
        for (i, &ci) in c.iter().enumerate() {
            idx = idx * self.extent(i) + (ci - self.min[i]) as u64;
        }
        idx
    }

    /// Grows the box by `r` on every side, clipped to `outer` when provided.
    pub fn inflate(&self, r: u64, outer: Option<GridBounds<D>>) -> GridBounds<D> {
        let mut min = self.min;
        let mut max = self.max;
        for i in 0..D {
            min[i] -= r as i64;
            max[i] += r as i64;
            if let Some(o) = outer {
                min[i] = min[i].max(o.min[i]);
                max[i] = max[i].min(o.max[i]);
            }
        }
        GridBounds { min, max }
    }
}

impl GridBounds<2> {
    /// The square grid `[0, n) x [0, n)`, matching the thesis' `Z_n x Z_n`
    /// setting of §2.3.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn square(n: u64) -> Self {
        GridBounds::cube(n)
    }
}

/// Iterator over every point of a [`GridBounds`] in lexicographic order.
#[derive(Debug, Clone)]
pub struct Iter<const D: usize> {
    bounds: GridBounds<D>,
    cursor: Option<[i64; D]>,
}

impl<const D: usize> Iterator for Iter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let cur = self.cursor?;
        let out = Point::new(cur);
        // Advance odometer-style from the last axis.
        let mut next = cur;
        let mut axis = D;
        loop {
            if axis == 0 {
                self.cursor = None;
                break;
            }
            axis -= 1;
            if next[axis] < self.bounds.max[axis] {
                next[axis] += 1;
                next[(axis + 1)..D].copy_from_slice(&self.bounds.min[(axis + 1)..D]);
                self.cursor = Some(next);
                break;
            }
        }
        Some(out)
    }
}

impl<const D: usize> IntoIterator for &GridBounds<D> {
    type Item = Point<D>;
    type IntoIter = Iter<D>;
    fn into_iter(self) -> Iter<D> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{pt1, pt2, pt3};

    #[test]
    fn volume_and_extent() {
        let b = GridBounds::new([0, -1], [2, 3]);
        assert_eq!(b.extent(0), 3);
        assert_eq!(b.extent(1), 5);
        assert_eq!(b.volume(), 15);
    }

    #[test]
    fn iter_covers_all_points_once() {
        let b: GridBounds<3> = GridBounds::new([0, 0, 0], [1, 2, 1]);
        let pts: Vec<_> = b.iter().collect();
        assert_eq!(pts.len() as u64, b.volume());
        let mut sorted = pts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
        assert!(pts.iter().all(|p| b.contains(*p)));
        // Lexicographic order.
        assert_eq!(pts[0], pt3(0, 0, 0));
        assert_eq!(pts[1], pt3(0, 0, 1));
    }

    #[test]
    fn contains_and_clamp() {
        let b = GridBounds::square(4);
        assert!(b.contains(pt2(0, 3)));
        assert!(!b.contains(pt2(-1, 0)));
        assert_eq!(b.clamp(pt2(-5, 10)), pt2(0, 3));
        assert_eq!(b.clamp(pt2(2, 2)), pt2(2, 2));
    }

    #[test]
    fn clipped_ball() {
        let b = GridBounds::square(4);
        // Full interior ball.
        let pts: Vec<_> = b.ball(pt2(2, 2), 1).collect();
        assert_eq!(pts.len(), 5);
        // Corner ball is clipped.
        let pts: Vec<_> = b.ball(pt2(0, 0), 1).collect();
        assert_eq!(pts.len(), 3);
        // Ball centered outside can still intersect.
        let pts: Vec<_> = b.ball(pt2(-1, 0), 1).collect();
        assert_eq!(pts, vec![pt2(0, 0)]);
        // Ball entirely outside.
        assert_eq!(b.ball(pt2(-10, 0), 2).count(), 0);
    }

    #[test]
    fn inflate_with_and_without_outer() {
        let inner: GridBounds<1> = GridBounds::new([2], [3]);
        let grown = inner.inflate(2, None);
        assert_eq!(grown.min(), [0]);
        assert_eq!(grown.max(), [5]);
        let outer = GridBounds::new([1], [4]);
        let clipped = inner.inflate(2, Some(outer));
        assert_eq!(clipped.min(), [1]);
        assert_eq!(clipped.max(), [4]);
    }

    #[test]
    #[should_panic(expected = "empty bounds")]
    fn inverted_bounds_panic() {
        let _ = GridBounds::new([3], [2]);
    }

    #[test]
    fn one_dimensional_iteration() {
        let b: GridBounds<1> = GridBounds::new([-2], [2]);
        let pts: Vec<_> = (&b).into_iter().collect();
        assert_eq!(pts, vec![pt1(-2), pt1(-1), pt1(0), pt1(1), pt1(2)]);
    }
}
