//! Chessboard coloring and black–white pairing (§3.2).
//!
//! The on-line strategy colors every vertex by the parity of its coordinate
//! sum and divides each cube into pairs of *adjacent* vertices — necessarily
//! one black and one white — so that a single active vehicle can serve both
//! vertices of its pair with walks of length at most 1. When the cube has an
//! odd number of vertices, exactly one vertex is left unpaired (the thesis
//! assumes WLOG it is black; here the leftover vertex simply forms a
//! singleton pair whose vehicle starts active).
//!
//! The pairing is constructed from a boustrophedon (snake) Hamiltonian path
//! of the cube's box grid graph: consecutive path vertices are grid-adjacent,
//! so pairing them two-by-two yields adjacent pairs with at most one vertex
//! left over.

use crate::bounds::GridBounds;
use crate::point::Point;
use std::collections::HashMap;

/// The chessboard color of a vertex: the parity of its coordinate sum
/// (`black` when `Σ x_i ≡ 0 (mod 2)`, per §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Color {
    /// Coordinate sum even.
    Black,
    /// Coordinate sum odd.
    White,
}

impl Color {
    /// The color of point `p`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmvrp_grid::{Color, pt2};
    /// assert_eq!(Color::of(pt2(0, 0)), Color::Black);
    /// assert_eq!(Color::of(pt2(0, 1)), Color::White);
    /// assert_eq!(Color::of(pt2(-1, -1)), Color::Black);
    /// ```
    pub fn of<const D: usize>(p: Point<D>) -> Color {
        if p.coord_sum().rem_euclid(2) == 0 {
            Color::Black
        } else {
            Color::White
        }
    }

    /// The opposite color.
    pub fn flip(self) -> Color {
        match self {
            Color::Black => Color::White,
            Color::White => Color::Black,
        }
    }
}

/// A pairing of the vertices of one cube into adjacent black–white pairs,
/// with at most one singleton when the cube has odd volume.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{pairing_in_cube, GridBounds};
/// let cube: GridBounds<2> = GridBounds::cube(3);
/// let pairing = pairing_in_cube(&cube);
/// assert_eq!(pairing.pairs().len(), 5); // 4 proper pairs + 1 singleton
/// assert_eq!(pairing.singleton_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pairing<const D: usize> {
    pairs: Vec<(Point<D>, Option<Point<D>>)>,
    index: HashMap<Point<D>, usize>,
}

impl<const D: usize> Pairing<D> {
    /// The list of pairs; `.1` is `None` for the singleton.
    pub fn pairs(&self) -> &[(Point<D>, Option<Point<D>>)] {
        &self.pairs
    }

    /// Index of the pair containing `p`, if `p` belongs to the pairing.
    pub fn pair_of(&self, p: Point<D>) -> Option<usize> {
        self.index.get(&p).copied()
    }

    /// The *primary* vertex of each pair — the vertex whose vehicle starts
    /// active in the on-line strategy (the black member when the pair is
    /// proper).
    pub fn primary(&self, pair: usize) -> Point<D> {
        self.pairs[pair].0
    }

    /// Number of singleton pairs (0 or 1).
    pub fn singleton_count(&self) -> usize {
        self.pairs.iter().filter(|(_, b)| b.is_none()).count()
    }

    /// Total number of vertices covered.
    pub fn vertex_count(&self) -> usize {
        self.index.len()
    }
}

/// The partner of `p` within its pair, if the pair is proper.
pub fn pair_partner<const D: usize>(pairing: &Pairing<D>, p: Point<D>) -> Option<Point<D>> {
    let idx = pairing.pair_of(p)?;
    let (a, b) = pairing.pairs[idx];
    match b {
        Some(b) if a == p => Some(b),
        Some(b) if b == p => Some(a),
        _ => None,
    }
}

/// Boustrophedon (snake) ordering of a box: a Hamiltonian path of the box
/// grid graph, so consecutive points are at Manhattan distance 1.
///
/// Besides the pairing construction, this is the sweep route used by the
/// Chapter 5 grid collector (a single vehicle visiting every depot with
/// unit steps).
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{snake_order, GridBounds};
/// let order = snake_order(&GridBounds::<2>::cube(3));
/// assert_eq!(order.len(), 9);
/// for w in order.windows(2) {
///     assert_eq!(w[0].manhattan(w[1]), 1);
/// }
/// ```
pub fn snake_order<const D: usize>(bounds: &GridBounds<D>) -> Vec<Point<D>> {
    let mut order: Vec<Point<D>> = Vec::with_capacity(bounds.volume() as usize);
    // Recursive construction over axes: snake axis 0 outermost.
    fn rec<const D: usize>(
        bounds: &GridBounds<D>,
        axis: usize,
        fixed: &mut [i64],
        out: &mut Vec<Point<D>>,
        reverse: bool,
    ) {
        let min = bounds.min()[axis];
        let max = bounds.max()[axis];
        let values: Vec<i64> = if reverse {
            (min..=max).rev().collect()
        } else {
            (min..=max).collect()
        };
        for (k, v) in values.into_iter().enumerate() {
            fixed[axis] = v;
            if axis + 1 == D {
                let mut coords = [0i64; D];
                coords.copy_from_slice(fixed);
                out.push(Point::new(coords));
            } else {
                // Alternate direction per step so the path stays adjacent
                // when it wraps to the next slice.
                let flip = (k % 2 == 1) != reverse;
                rec(bounds, axis + 1, fixed, out, flip);
            }
        }
    }
    let mut fixed = vec![0i64; D];
    rec(bounds, 0, &mut fixed, &mut order, false);
    order
}

/// Builds the adjacent black–white pairing of one cube.
///
/// Each proper pair is stored with its **black** vertex first (the primary);
/// the singleton (present iff the cube volume is odd) is stored as
/// `(vertex, None)`.
pub fn pairing_in_cube<const D: usize>(cube: &GridBounds<D>) -> Pairing<D> {
    let order = snake_order(cube);
    let mut pairs = Vec::with_capacity(order.len() / 2 + 1);
    let mut index = HashMap::with_capacity(order.len());
    let mut it = order.into_iter();
    while let Some(a) = it.next() {
        match it.next() {
            Some(b) => {
                debug_assert_eq!(a.manhattan(b), 1, "snake order must be adjacent");
                // Store the black vertex first.
                let (first, second) = if Color::of(a) == Color::Black {
                    (a, b)
                } else {
                    (b, a)
                };
                let idx = pairs.len();
                pairs.push((first, Some(second)));
                index.insert(first, idx);
                index.insert(second, idx);
            }
            None => {
                let idx = pairs.len();
                pairs.push((a, None));
                index.insert(a, idx);
            }
        }
    }
    Pairing { pairs, index }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt2;

    #[test]
    fn colors_alternate_on_neighbors() {
        for p in GridBounds::<2>::square(5).iter() {
            for q in p.neighbors() {
                assert_ne!(Color::of(p), Color::of(q));
            }
        }
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Color::Black.flip(), Color::White);
        assert_eq!(Color::White.flip().flip(), Color::White);
    }

    #[test]
    fn snake_is_hamiltonian_path() {
        for side in 1..=5u64 {
            let cube: GridBounds<2> = GridBounds::cube(side);
            let order = snake_order(&cube);
            assert_eq!(order.len() as u64, cube.volume());
            for w in order.windows(2) {
                assert_eq!(w[0].manhattan(w[1]), 1, "side={side}");
            }
            let mut sorted = order.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), order.len());
        }
    }

    #[test]
    fn snake_three_dimensional() {
        let cube: GridBounds<3> = GridBounds::cube(3);
        let order = snake_order(&cube);
        assert_eq!(order.len(), 27);
        for w in order.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn even_cube_has_perfect_pairing() {
        let cube: GridBounds<2> = GridBounds::cube(4);
        let pairing = pairing_in_cube(&cube);
        assert_eq!(pairing.pairs().len(), 8);
        assert_eq!(pairing.singleton_count(), 0);
        assert_eq!(pairing.vertex_count(), 16);
    }

    #[test]
    fn odd_cube_has_one_singleton() {
        let cube: GridBounds<2> = GridBounds::cube(5);
        let pairing = pairing_in_cube(&cube);
        assert_eq!(pairing.pairs().len(), 13);
        assert_eq!(pairing.singleton_count(), 1);
    }

    #[test]
    fn proper_pairs_are_adjacent_and_bicolored() {
        let cube = GridBounds::new([3, -2], [6, 1]);
        let pairing = pairing_in_cube(&cube);
        for (a, b) in pairing.pairs() {
            if let Some(b) = b {
                assert_eq!(a.manhattan(*b), 1);
                assert_eq!(Color::of(*a), Color::Black);
                assert_eq!(Color::of(*b), Color::White);
            }
        }
    }

    #[test]
    fn partner_lookup() {
        let cube: GridBounds<2> = GridBounds::cube(2);
        let pairing = pairing_in_cube(&cube);
        for (a, b) in pairing.pairs() {
            let b = b.expect("2x2 cube pairs perfectly");
            assert_eq!(pair_partner(&pairing, *a), Some(b));
            assert_eq!(pair_partner(&pairing, b), Some(*a));
        }
        assert_eq!(pair_partner(&pairing, pt2(50, 50)), None);
    }

    #[test]
    fn every_vertex_indexed() {
        let cube: GridBounds<3> = GridBounds::cube(3);
        let pairing = pairing_in_cube(&cube);
        for p in cube.iter() {
            let idx = pairing.pair_of(p).expect("vertex must be paired");
            let (a, b) = pairing.pairs()[idx];
            assert!(a == p || b == Some(p));
        }
    }

    #[test]
    fn clipped_rectangular_cube() {
        // Lemma 2.2.5 cubes at the grid boundary are rectangles.
        let cube = GridBounds::new([0, 0], [2, 0]); // 3x1 strip
        let pairing = pairing_in_cube(&cube);
        assert_eq!(pairing.pairs().len(), 2);
        assert_eq!(pairing.singleton_count(), 1);
    }
}
