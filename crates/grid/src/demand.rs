//! Demand functions `d(x)` over the grid.
//!
//! The thesis defines `d(x)` as the total number of unit jobs arriving at
//! position `x` (§1.3). [`DemandMap`] is the sparse representation used by
//! the exact solvers; [`DenseDemand2D`] is the `n×n` array (with `n` a power
//! of two) consumed by the paper's Algorithm 1 in §2.3.

use crate::bounds::GridBounds;
use crate::point::Point;
use std::collections::BTreeMap;

/// Sparse integer demand over `Z^D`.
///
/// Positions with no entry have demand 0. Backed by a `BTreeMap` so that
/// iteration order — and therefore every downstream computation — is
/// deterministic.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{DemandMap, pt2};
///
/// let mut d = DemandMap::new();
/// d.add(pt2(0, 0), 3);
/// d.add(pt2(0, 0), 2);
/// d.add(pt2(1, 1), 1);
/// assert_eq!(d.get(pt2(0, 0)), 5);
/// assert_eq!(d.get(pt2(9, 9)), 0);
/// assert_eq!(d.total(), 6);
/// assert_eq!(d.support().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DemandMap<const D: usize> {
    map: BTreeMap<Point<D>, u64>,
    total: u64,
}

impl<const D: usize> DemandMap<D> {
    /// Creates an empty demand map (identically zero demand).
    pub fn new() -> Self {
        DemandMap {
            map: BTreeMap::new(),
            total: 0,
        }
    }

    /// Adds `amount` units of demand at `x`.
    pub fn add(&mut self, x: Point<D>, amount: u64) {
        if amount == 0 {
            return;
        }
        *self.map.entry(x).or_insert(0) += amount;
        self.total += amount;
    }

    /// Sets the demand at `x` to exactly `amount` (removing the entry when 0).
    pub fn set(&mut self, x: Point<D>, amount: u64) {
        let old = self.map.remove(&x).unwrap_or(0);
        self.total -= old;
        if amount > 0 {
            self.map.insert(x, amount);
            self.total += amount;
        }
    }

    /// The demand at `x` (0 if absent).
    pub fn get(&self, x: Point<D>) -> u64 {
        self.map.get(&x).copied().unwrap_or(0)
    }

    /// Total demand `Σ_x d(x)`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum demand at any single position (`D` in §2.3); 0 when empty.
    pub fn max_demand(&self) -> u64 {
        self.map.values().copied().max().unwrap_or(0)
    }

    /// Number of positions with positive demand.
    pub fn support_len(&self) -> usize {
        self.map.len()
    }

    /// Whether the demand is identically zero.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates the positions with positive demand, in point order.
    pub fn support(&self) -> impl Iterator<Item = Point<D>> + '_ {
        self.map.keys().copied()
    }

    /// Iterates `(position, demand)` pairs with positive demand.
    pub fn iter(&self) -> impl Iterator<Item = (Point<D>, u64)> + '_ {
        self.map.iter().map(|(p, d)| (*p, *d))
    }

    /// Sum of demand over an arbitrary set of positions.
    pub fn sum_over<I: IntoIterator<Item = Point<D>>>(&self, points: I) -> u64 {
        points.into_iter().map(|p| self.get(p)).sum()
    }

    /// Smallest bounds containing the support, or `None` when empty.
    pub fn support_bounds(&self) -> Option<GridBounds<D>> {
        let mut min = [i64::MAX; D];
        let mut max = [i64::MIN; D];
        if self.map.is_empty() {
            return None;
        }
        for p in self.map.keys() {
            let c = p.coords();
            for i in 0..D {
                min[i] = min[i].min(c[i]);
                max[i] = max[i].max(c[i]);
            }
        }
        Some(GridBounds::new(min, max))
    }
}

impl<const D: usize> FromIterator<(Point<D>, u64)> for DemandMap<D> {
    fn from_iter<I: IntoIterator<Item = (Point<D>, u64)>>(iter: I) -> Self {
        let mut m = DemandMap::new();
        for (p, d) in iter {
            m.add(p, d);
        }
        m
    }
}

impl<const D: usize> Extend<(Point<D>, u64)> for DemandMap<D> {
    fn extend<I: IntoIterator<Item = (Point<D>, u64)>>(&mut self, iter: I) {
        for (p, d) in iter {
            self.add(p, d);
        }
    }
}

/// Dense 2-D demand on the `n×n` grid with `n` a power of two — the input
/// shape required by the paper's Algorithm 1 (§2.3).
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{DenseDemand2D, pt2};
///
/// let mut d = DenseDemand2D::zeros(8);
/// d.set(3, 4, 7);
/// assert_eq!(d.get(3, 4), 7);
/// assert_eq!(d.n(), 8);
/// let sparse = d.to_demand_map();
/// assert_eq!(sparse.get(pt2(3, 4)), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseDemand2D {
    n: u64,
    cells: Vec<u64>,
}

impl DenseDemand2D {
    /// An all-zero `n×n` demand array.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two (Algorithm 1's dyadic
    /// coarsening requires it).
    pub fn zeros(n: u64) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "n must be a power of two");
        DenseDemand2D {
            n,
            cells: vec![0; (n * n) as usize],
        }
    }

    /// Builds from a sparse map, clipping to `[0, n)²`.
    ///
    /// # Panics
    ///
    /// Panics if any support point lies outside `[0, n)²`, or if `n` is not a
    /// power of two.
    pub fn from_demand_map(n: u64, map: &DemandMap<2>) -> Self {
        let mut d = DenseDemand2D::zeros(n);
        for (p, amount) in map.iter() {
            let [x, y] = p.coords();
            assert!(
                x >= 0 && y >= 0 && (x as u64) < n && (y as u64) < n,
                "demand point {p} outside [0,{n})^2"
            );
            d.set(x as u64, y as u64, amount);
        }
        d
    }

    /// Grid side length.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Demand at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn get(&self, x: u64, y: u64) -> u64 {
        assert!(x < self.n && y < self.n, "index out of range");
        self.cells[(x * self.n + y) as usize]
    }

    /// Sets the demand at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn set(&mut self, x: u64, y: u64, amount: u64) {
        assert!(x < self.n && y < self.n, "index out of range");
        self.cells[(x * self.n + y) as usize] = amount;
    }

    /// Total demand.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Maximum per-cell demand (`D` in §2.3).
    pub fn max_demand(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Average demand `D̂ = Σ d / n²` as an exact rational numerator over
    /// `n²` — returned as `f64` for convenience.
    pub fn avg_demand(&self) -> f64 {
        self.total() as f64 / (self.n * self.n) as f64
    }

    /// Converts to the sparse representation.
    pub fn to_demand_map(&self) -> DemandMap<2> {
        let mut m = DemandMap::new();
        for x in 0..self.n {
            for y in 0..self.n {
                let d = self.get(x, y);
                if d > 0 {
                    m.add(Point::new([x as i64, y as i64]), d);
                }
            }
        }
        m
    }

    /// Coarsens by summing `2×2` blocks, producing an `(n/2)×(n/2)` array —
    /// one step of Algorithm 1's loop (lines 8–9).
    ///
    /// # Panics
    ///
    /// Panics if `n == 1`.
    pub fn coarsen(&self) -> DenseDemand2D {
        assert!(self.n >= 2, "cannot coarsen a 1x1 array");
        let m = self.n / 2;
        let mut out = DenseDemand2D::zeros(m.max(1));
        if m == 0 {
            return out;
        }
        for i in 0..m {
            for j in 0..m {
                let s = self.get(2 * i, 2 * j)
                    + self.get(2 * i, 2 * j + 1)
                    + self.get(2 * i + 1, 2 * j)
                    + self.get(2 * i + 1, 2 * j + 1);
                out.set(i, j, s);
            }
        }
        out
    }
}

/// Dense demand on a `side^D` cube with `side` a power of two — the
/// generic-dimension analogue of [`DenseDemand2D`] for Algorithm 1's dyadic
/// coarsening in arbitrary `ℓ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseDemand<const D: usize> {
    side: u64,
    cells: Vec<u64>,
}

impl<const D: usize> DenseDemand<D> {
    /// An all-zero `side^D` array.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero or not a power of two.
    pub fn zeros(side: u64) -> Self {
        assert!(
            side > 0 && side.is_power_of_two(),
            "side must be a power of two"
        );
        let volume = side.pow(D as u32) as usize;
        DenseDemand {
            side,
            cells: vec![0; volume],
        }
    }

    /// Builds from a sparse map over `[0, side)^D`.
    ///
    /// # Panics
    ///
    /// Panics if any support point lies outside `[0, side)^D`, or `side` is
    /// not a power of two.
    pub fn from_demand_map(side: u64, map: &DemandMap<D>) -> Self {
        let mut dense = DenseDemand::zeros(side);
        for (p, amount) in map.iter() {
            let idx = dense.index_of(p);
            dense.cells[idx] = amount;
        }
        dense
    }

    /// Cube side length.
    pub fn side(&self) -> u64 {
        self.side
    }

    fn index_of(&self, p: Point<D>) -> usize {
        let c = p.coords();
        let mut idx = 0usize;
        for coord in c.iter().take(D) {
            assert!(
                *coord >= 0 && (*coord as u64) < self.side,
                "point {p} outside [0,{})^{D}",
                self.side
            );
            idx = idx * self.side as usize + *coord as usize;
        }
        idx
    }

    /// Demand at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn get(&self, p: Point<D>) -> u64 {
        self.cells[self.index_of(p)]
    }

    /// Sets the demand at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: Point<D>, amount: u64) {
        let idx = self.index_of(p);
        self.cells[idx] = amount;
    }

    /// Total demand.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Maximum single-cell demand (`D` of §2.3).
    pub fn max_demand(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Coarsens by summing `2^D` blocks — one step of Algorithm 1's
    /// dyadic loop in dimension `D`.
    ///
    /// # Panics
    ///
    /// Panics if `side == 1`.
    pub fn coarsen(&self) -> DenseDemand<D> {
        assert!(self.side >= 2, "cannot coarsen a side-1 array");
        let half = self.side / 2;
        let mut out = DenseDemand::<D>::zeros(half);
        // Walk every fine cell and accumulate into its coarse parent.
        let mut coords = [0i64; D];
        for (idx, &v) in self.cells.iter().enumerate() {
            if v > 0 {
                // Decode idx into coordinates.
                let mut rem = idx;
                for axis in (0..D).rev() {
                    coords[axis] = (rem % self.side as usize) as i64;
                    rem /= self.side as usize;
                }
                let mut parent = [0i64; D];
                for axis in 0..D {
                    parent[axis] = coords[axis] / 2;
                }
                let pidx = out.index_of(Point::new(parent));
                out.cells[pidx] += v;
            }
        }
        out
    }

    /// Converts to the sparse representation.
    pub fn to_demand_map(&self) -> DemandMap<D> {
        let mut m = DemandMap::new();
        let mut coords = [0i64; D];
        for (idx, &v) in self.cells.iter().enumerate() {
            if v > 0 {
                let mut rem = idx;
                for axis in (0..D).rev() {
                    coords[axis] = (rem % self.side as usize) as i64;
                    rem /= self.side as usize;
                }
                m.add(Point::new(coords), v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt2;

    #[test]
    fn add_set_get_total() {
        let mut d: DemandMap<2> = DemandMap::new();
        d.add(pt2(1, 1), 4);
        d.set(pt2(1, 1), 2);
        d.set(pt2(2, 2), 3);
        assert_eq!(d.total(), 5);
        d.set(pt2(2, 2), 0);
        assert_eq!(d.total(), 2);
        assert_eq!(d.support_len(), 1);
        assert_eq!(d.max_demand(), 2);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut d: DemandMap<1> = DemandMap::new();
        d.add(crate::pt1(0), 0);
        assert!(d.is_empty());
        assert_eq!(d.max_demand(), 0);
        assert!(d.support_bounds().is_none());
    }

    #[test]
    fn sum_over_and_bounds() {
        let d: DemandMap<2> = [(pt2(0, 0), 1u64), (pt2(3, 5), 2), (pt2(-1, 2), 4)]
            .into_iter()
            .collect();
        assert_eq!(d.sum_over([pt2(0, 0), pt2(3, 5), pt2(7, 7)]), 3);
        let b = d.support_bounds().unwrap();
        assert_eq!(b.min(), [-1, 0]);
        assert_eq!(b.max(), [3, 5]);
    }

    #[test]
    fn extend_accumulates() {
        let mut d: DemandMap<2> = DemandMap::new();
        d.extend([(pt2(0, 0), 1), (pt2(0, 0), 2)]);
        assert_eq!(d.get(pt2(0, 0)), 3);
    }

    #[test]
    fn dense_roundtrip() {
        let mut sparse: DemandMap<2> = DemandMap::new();
        sparse.add(pt2(0, 1), 5);
        sparse.add(pt2(7, 7), 2);
        let dense = DenseDemand2D::from_demand_map(8, &sparse);
        assert_eq!(dense.total(), 7);
        assert_eq!(dense.max_demand(), 5);
        assert_eq!(dense.to_demand_map(), sparse);
    }

    #[test]
    fn coarsen_sums_blocks() {
        let mut d = DenseDemand2D::zeros(4);
        d.set(0, 0, 1);
        d.set(0, 1, 2);
        d.set(1, 0, 3);
        d.set(1, 1, 4);
        d.set(3, 3, 7);
        let c = d.coarsen();
        assert_eq!(c.n(), 2);
        assert_eq!(c.get(0, 0), 10);
        assert_eq!(c.get(1, 1), 7);
        assert_eq!(c.total(), d.total());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = DenseDemand2D::zeros(6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_support_rejected() {
        let mut sparse: DemandMap<2> = DemandMap::new();
        sparse.add(pt2(8, 0), 1);
        let _ = DenseDemand2D::from_demand_map(8, &sparse);
    }

    #[test]
    fn generic_dense_roundtrip_and_coarsen() {
        use crate::point::pt3;
        let mut d: DenseDemand<3> = DenseDemand::zeros(4);
        d.set(pt3(0, 0, 0), 1);
        d.set(pt3(1, 1, 1), 2);
        d.set(pt3(3, 3, 3), 7);
        assert_eq!(d.total(), 10);
        assert_eq!(d.max_demand(), 7);
        let c = d.coarsen();
        assert_eq!(c.side(), 2);
        assert_eq!(c.get(pt3(0, 0, 0)), 3); // both low cells fold together
        assert_eq!(c.get(pt3(1, 1, 1)), 7);
        assert_eq!(c.total(), 10);
        let sparse = d.to_demand_map();
        assert_eq!(DenseDemand::from_demand_map(4, &sparse), d);
    }

    #[test]
    fn generic_dense_matches_2d_variant() {
        let mut sparse: DemandMap<2> = DemandMap::new();
        for k in 0..10i64 {
            sparse.set(pt2((k * 3) % 8, (k * 5) % 8), (k as u64 + 1) * 4);
        }
        let d2 = DenseDemand2D::from_demand_map(8, &sparse);
        let dg: DenseDemand<2> = DenseDemand::from_demand_map(8, &sparse);
        assert_eq!(dg.total(), d2.total());
        // Coarsening agrees cell by cell.
        let c2 = d2.coarsen();
        let cg = dg.coarsen();
        for x in 0..4i64 {
            for y in 0..4i64 {
                assert_eq!(cg.get(pt2(x, y)), c2.get(x as u64, y as u64));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn generic_dense_rejects_non_power() {
        let _: DenseDemand<2> = DenseDemand::zeros(6);
    }

    #[test]
    fn avg_demand() {
        let mut d = DenseDemand2D::zeros(2);
        d.set(0, 0, 8);
        assert_eq!(d.avg_demand(), 2.0);
    }
}
