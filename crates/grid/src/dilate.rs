//! Set dilation: the neighborhood `N_r(T)` of Theorem 1.4.1.
//!
//! `N_r(T) = { y : ∃ x ∈ T, ‖x−y‖₁ ≤ r }` is computed by multi-source BFS —
//! on the lattice with unit edge weights, L1 distance equals graph distance,
//! so a breadth-first wavefront from all of `T` visits exactly `N_r(T)` in
//! `r` rounds.

use crate::bounds::GridBounds;
use crate::point::Point;
use std::collections::{HashMap, HashSet, VecDeque};

/// The result of dilating a set: the dilated set together with each point's
/// distance to the original set.
#[derive(Debug, Clone)]
pub struct Dilation<const D: usize> {
    /// Distance of every reached point to the nearest seed (`0` on seeds).
    pub distance: HashMap<Point<D>, u64>,
}

impl<const D: usize> Dilation<D> {
    /// Number of points within the dilation, i.e. `|N_r(T)|` clipped to the
    /// bounds used during construction.
    pub fn len(&self) -> u64 {
        self.distance.len() as u64
    }

    /// Whether the dilation is empty (only possible for an empty seed set).
    pub fn is_empty(&self) -> bool {
        self.distance.is_empty()
    }

    /// Whether `p` belongs to the dilated set.
    pub fn contains(&self, p: Point<D>) -> bool {
        self.distance.contains_key(&p)
    }

    /// Iterates the points of the dilated set (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Point<D>> + '_ {
        self.distance.keys().copied()
    }
}

/// Computes `N_r(T) ∩ bounds` by multi-source BFS from `seeds`.
///
/// Seeds outside `bounds` are ignored. Runs in `O(|N_r(T)| · D)` time.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{dilate, GridBounds, pt2};
/// let b = GridBounds::square(10);
/// let n = dilate(&b, [pt2(5, 5)], 2);
/// assert_eq!(n.len(), 13); // the radius-2 diamond
/// assert!(n.contains(pt2(3, 5)));
/// assert!(!n.contains(pt2(2, 5)));
/// ```
pub fn dilate<const D: usize, I>(bounds: &GridBounds<D>, seeds: I, r: u64) -> Dilation<D>
where
    I: IntoIterator<Item = Point<D>>,
{
    let mut distance: HashMap<Point<D>, u64> = HashMap::new();
    let mut queue: VecDeque<Point<D>> = VecDeque::new();
    for s in seeds {
        if bounds.contains(s) && !distance.contains_key(&s) {
            distance.insert(s, 0);
            queue.push_back(s);
        }
    }
    while let Some(p) = queue.pop_front() {
        let d = distance[&p];
        if d == r {
            continue;
        }
        for q in p.neighbors() {
            if bounds.contains(q) && !distance.contains_key(&q) {
                distance.insert(q, d + 1);
                queue.push_back(q);
            }
        }
    }
    Dilation { distance }
}

/// `|N_r(T) ∩ bounds|` — the denominator of the density ratio in
/// Lemma 2.2.2 — without materializing distances for the caller.
pub fn dilated_size<const D: usize, I>(bounds: &GridBounds<D>, seeds: I, r: u64) -> u64
where
    I: IntoIterator<Item = Point<D>>,
{
    dilate(bounds, seeds, r).len()
}

/// Brute-force reference: union of clipped balls. Exposed for tests and
/// cross-validation only; quadratic in the seed count.
pub fn dilate_bruteforce<const D: usize, I>(
    bounds: &GridBounds<D>,
    seeds: I,
    r: u64,
) -> HashSet<Point<D>>
where
    I: IntoIterator<Item = Point<D>>,
{
    let mut out = HashSet::new();
    for s in seeds {
        for p in bounds.ball(s, r) {
            out.insert(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{pt1, pt2};

    #[test]
    fn single_seed_is_ball() {
        let b = GridBounds::square(20);
        for r in 0..=4u64 {
            let d = dilate(&b, [pt2(10, 10)], r);
            let brute = dilate_bruteforce(&b, [pt2(10, 10)], r);
            assert_eq!(d.len() as usize, brute.len());
            assert!(brute.iter().all(|p| d.contains(*p)));
        }
    }

    #[test]
    fn distances_are_nearest_seed() {
        let b = GridBounds::square(20);
        let seeds = [pt2(0, 0), pt2(10, 10)];
        let d = dilate(&b, seeds, 6);
        for (p, dist) in &d.distance {
            let want = seeds.iter().map(|s| s.manhattan(*p)).min().unwrap();
            assert_eq!(*dist, want, "at {p}");
        }
    }

    #[test]
    fn overlapping_seeds_counted_once() {
        let b = GridBounds::square(10);
        let d = dilate(&b, [pt2(4, 4), pt2(4, 5)], 1);
        // Two overlapping radius-1 diamonds: 5 + 5 - 2 shared = 8.
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn clipped_at_boundary() {
        let b = GridBounds::square(3);
        let d = dilate(&b, [pt2(0, 0)], 5);
        assert_eq!(d.len(), 9); // whole grid
    }

    #[test]
    fn empty_seeds_empty_result() {
        let b: GridBounds<1> = GridBounds::cube(5);
        let d = dilate(&b, std::iter::empty(), 3);
        assert!(d.is_empty());
        assert_eq!(dilated_size(&b, std::iter::empty(), 3), 0);
    }

    #[test]
    fn seeds_outside_bounds_ignored() {
        let b: GridBounds<1> = GridBounds::cube(5);
        let d = dilate(&b, [pt1(100)], 2);
        assert!(d.is_empty());
    }

    #[test]
    fn radius_zero_is_seed_set() {
        let b = GridBounds::square(10);
        let d = dilate(&b, [pt2(1, 1), pt2(2, 2)], 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn matches_bruteforce_on_line_seed() {
        let b = GridBounds::square(16);
        let line: Vec<_> = (0..16).map(|x| pt2(x, 8)).collect();
        for r in [0u64, 1, 2, 3] {
            let fast = dilate(&b, line.iter().copied(), r);
            let brute = dilate_bruteforce(&b, line.iter().copied(), r);
            assert_eq!(fast.len() as usize, brute.len(), "r={r}");
        }
    }
}
