//! The `⌈ω⌉`-cube partition of Lemma 2.2.5.
//!
//! Both the off-line plan construction (Lemma 2.2.5) and the on-line strategy
//! (§3.2) partition `Z^ℓ` into axis-aligned cubes of side `⌈ω⌉` and confine
//! every vehicle to its own cube. [`CubePartition`] indexes that partition
//! over a bounded grid; boundary cubes are clipped.

use crate::bounds::GridBounds;
use crate::point::Point;

/// Identifier of one cube of a [`CubePartition`]: the integer coordinates of
/// the cube in the coarsened lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CubeId<const D: usize>(pub [i64; D]);

/// A partition of a bounded grid into side-`s` cubes, aligned to the grid's
/// minimum corner.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{CubePartition, GridBounds, pt2};
///
/// let part = CubePartition::new(GridBounds::square(8), 3);
/// let id = part.cube_of(pt2(4, 7));
/// assert_eq!(id.0, [1, 2]);
/// let cube = part.cube_bounds(id);
/// assert!(cube.contains(pt2(4, 7)));
/// assert_eq!(part.cubes().count(), 9); // ceil(8/3)^2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubePartition<const D: usize> {
    grid: GridBounds<D>,
    side: u64,
}

impl<const D: usize> CubePartition<D> {
    /// Creates a partition of `grid` into cubes of side `side`.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn new(grid: GridBounds<D>, side: u64) -> Self {
        assert!(side > 0, "cube side must be positive");
        CubePartition { grid, side }
    }

    /// The underlying grid bounds.
    pub fn grid(&self) -> GridBounds<D> {
        self.grid
    }

    /// The cube side length.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// The cube containing `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the grid.
    pub fn cube_of(&self, p: Point<D>) -> CubeId<D> {
        assert!(self.grid.contains(p), "point {p} outside partition grid");
        let c = p.coords();
        let min = self.grid.min();
        let mut id = [0i64; D];
        for i in 0..D {
            id[i] = (c[i] - min[i]) / self.side as i64;
        }
        CubeId(id)
    }

    /// The (clipped) bounds of cube `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not correspond to a cube intersecting the grid.
    pub fn cube_bounds(&self, id: CubeId<D>) -> GridBounds<D> {
        let gmin = self.grid.min();
        let gmax = self.grid.max();
        let mut min = [0i64; D];
        let mut max = [0i64; D];
        for i in 0..D {
            min[i] = gmin[i] + id.0[i] * self.side as i64;
            max[i] = (min[i] + self.side as i64 - 1).min(gmax[i]);
            assert!(
                id.0[i] >= 0 && min[i] <= gmax[i],
                "cube id {id:?} outside grid"
            );
        }
        GridBounds::new(min, max)
    }

    /// Number of cubes along axis `i`.
    pub fn cubes_along(&self, i: usize) -> u64 {
        self.grid.extent(i).div_ceil(self.side)
    }

    /// Iterates every cube id of the partition.
    pub fn cubes(&self) -> impl Iterator<Item = CubeId<D>> + '_ {
        let mut maxes = [0i64; D];
        for (i, m) in maxes.iter_mut().enumerate() {
            *m = self.cubes_along(i) as i64 - 1;
        }
        GridBounds::new([0; D], maxes)
            .iter()
            .map(|p| CubeId(p.coords()))
    }

    /// Iterates the points of cube `id`.
    pub fn points_in(&self, id: CubeId<D>) -> impl Iterator<Item = Point<D>> + '_ {
        self.cube_bounds(id).iter()
    }

    /// The maximum over all cubes of `f(points of cube)` — a helper for the
    /// cube characterizations (Corollaries 2.2.6/2.2.7).
    pub fn max_over_cubes<F: FnMut(GridBounds<D>) -> u64>(&self, mut f: F) -> u64 {
        self.cubes()
            .map(|id| f(self.cube_bounds(id)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{pt2, pt3};

    #[test]
    fn cube_of_and_bounds_consistent() {
        let part = CubePartition::new(GridBounds::square(10), 4);
        for p in part.grid().iter() {
            let id = part.cube_of(p);
            assert!(part.cube_bounds(id).contains(p), "point {p} id {id:?}");
        }
    }

    #[test]
    fn cubes_tile_grid_exactly() {
        let part = CubePartition::new(GridBounds::square(10), 4);
        let total: u64 = part.cubes().map(|id| part.cube_bounds(id).volume()).sum();
        assert_eq!(total, 100);
        assert_eq!(part.cubes().count(), 9); // 3x3 cubes (sides 4,4,2)
    }

    #[test]
    fn boundary_cubes_clipped() {
        let part = CubePartition::new(GridBounds::square(10), 4);
        let last = part.cube_bounds(CubeId([2, 2]));
        assert_eq!(last.min(), [8, 8]);
        assert_eq!(last.max(), [9, 9]);
        assert_eq!(last.volume(), 4);
    }

    #[test]
    fn negative_origin_grid() {
        let grid = GridBounds::new([-5, -5], [4, 4]);
        let part = CubePartition::new(grid, 5);
        assert_eq!(part.cube_of(pt2(-5, -5)), CubeId([0, 0]));
        assert_eq!(part.cube_of(pt2(0, 0)), CubeId([1, 1]));
        assert_eq!(part.cubes().count(), 4);
    }

    #[test]
    fn three_dimensional() {
        let part = CubePartition::new(GridBounds::<3>::cube(6), 2);
        assert_eq!(part.cubes().count(), 27);
        assert_eq!(part.cube_of(pt3(5, 0, 3)), CubeId([2, 0, 1]));
        assert_eq!(part.points_in(CubeId([0, 0, 0])).count(), 8);
    }

    #[test]
    fn side_larger_than_grid_is_single_cube() {
        let part = CubePartition::new(GridBounds::square(4), 100);
        assert_eq!(part.cubes().count(), 1);
        assert_eq!(part.cube_bounds(CubeId([0, 0])).volume(), 16);
    }

    #[test]
    fn max_over_cubes() {
        let part = CubePartition::new(GridBounds::square(4), 2);
        // f = volume; all cubes 2x2.
        assert_eq!(part.max_over_cubes(|b| b.volume()), 4);
    }

    #[test]
    #[should_panic(expected = "outside partition grid")]
    fn cube_of_outside_panics() {
        let part = CubePartition::new(GridBounds::square(4), 2);
        let _ = part.cube_of(pt2(9, 9));
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn cube_bounds_outside_panics() {
        let part = CubePartition::new(GridBounds::square(4), 2);
        let _ = part.cube_bounds(CubeId([5, 0]));
    }
}
