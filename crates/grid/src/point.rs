//! Lattice points of `Z^ℓ` with the Manhattan metric.

use std::fmt;
use std::ops::{Add, Index, Sub};

/// A point of the `D`-dimensional integer lattice `Z^D`.
///
/// The thesis works on `Z^ℓ` with `ℓ` a constant; we model the dimension as a
/// const generic so 1-D, 2-D, and 3-D instances are distinct types with
/// zero-cost coordinate storage.
///
/// # Examples
///
/// ```
/// use cmvrp_grid::{pt2, Point};
///
/// let a = pt2(1, 2);
/// let b = Point::new([4, -2]);
/// assert_eq!(a.manhattan(b), 7);
/// assert_eq!(a + b, pt2(5, 0));
/// assert_eq!(a[1], 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const D: usize> {
    coords: [i64; D],
}

/// Convenience constructor for a 1-D point.
pub fn pt1(x: i64) -> Point<1> {
    Point::new([x])
}

/// Convenience constructor for a 2-D point.
pub fn pt2(x: i64, y: i64) -> Point<2> {
    Point::new([x, y])
}

/// Convenience constructor for a 3-D point.
pub fn pt3(x: i64, y: i64, z: i64) -> Point<3> {
    Point::new([x, y, z])
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinates.
    pub fn new(coords: [i64; D]) -> Self {
        Point { coords }
    }

    /// The origin (all coordinates zero).
    pub fn origin() -> Self {
        Point { coords: [0; D] }
    }

    /// The coordinate array.
    pub fn coords(&self) -> [i64; D] {
        self.coords
    }

    /// Manhattan (L1, rectilinear) distance to another point — the travel
    /// metric of the thesis (footnote to §1.4).
    pub fn manhattan(&self, other: Point<D>) -> u64 {
        let mut d = 0u64;
        for i in 0..D {
            d += self.coords[i].abs_diff(other.coords[i]);
        }
        d
    }

    /// The L1 norm `‖x‖₁`.
    pub fn l1_norm(&self) -> u64 {
        self.coords.iter().map(|c| c.unsigned_abs()).sum()
    }

    /// Sum of coordinates; its parity determines the chessboard color used
    /// by the on-line strategy (§3.2).
    pub fn coord_sum(&self) -> i64 {
        self.coords.iter().sum()
    }

    /// The `2·D` lattice neighbors at Manhattan distance exactly 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmvrp_grid::pt2;
    /// let n: Vec<_> = pt2(0, 0).neighbors().collect();
    /// assert_eq!(n.len(), 4);
    /// assert!(n.contains(&pt2(1, 0)));
    /// assert!(n.contains(&pt2(0, -1)));
    /// ```
    pub fn neighbors(&self) -> Neighbors<D> {
        Neighbors {
            center: *self,
            next: 0,
        }
    }

    /// Returns the point translated by `delta` along axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= D`.
    pub fn step(&self, axis: usize, delta: i64) -> Self {
        assert!(axis < D, "axis {axis} out of range for dimension {D}");
        let mut coords = self.coords;
        coords[axis] += delta;
        Point { coords }
    }
}

/// Iterator over the `2·D` unit-distance neighbors of a point.
///
/// Produced by [`Point::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<const D: usize> {
    center: Point<D>,
    next: usize,
}

impl<const D: usize> Iterator for Neighbors<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        if self.next >= 2 * D {
            return None;
        }
        let axis = self.next / 2;
        let delta = if self.next.is_multiple_of(2) { 1 } else { -1 };
        self.next += 1;
        Some(self.center.step(axis, delta))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = 2 * D - self.next;
        (rem, Some(rem))
    }
}

impl<const D: usize> ExactSizeIterator for Neighbors<D> {}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point::origin()
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Point<D>;
    fn add(self, rhs: Point<D>) -> Point<D> {
        let mut coords = self.coords;
        for (c, r) in coords.iter_mut().zip(rhs.coords) {
            *c += r;
        }
        Point { coords }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Point<D>;
    fn sub(self, rhs: Point<D>) -> Point<D> {
        let mut coords = self.coords;
        for (c, r) in coords.iter_mut().zip(rhs.coords) {
            *c -= r;
        }
        Point { coords }
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.coords[i]
    }
}

impl<const D: usize> From<[i64; D]> for Point<D> {
    fn from(coords: [i64; D]) -> Self {
        Point { coords }
    }
}

impl<const D: usize> AsRef<[i64]> for Point<D> {
    fn as_ref(&self) -> &[i64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_a_metric() {
        let a = pt2(0, 0);
        let b = pt2(3, -4);
        let c = pt2(-1, 2);
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert!(a.manhattan(c) + c.manhattan(b) >= a.manhattan(b));
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn neighbors_unit_distance() {
        let p = pt3(5, -2, 0);
        let n: Vec<_> = p.neighbors().collect();
        assert_eq!(n.len(), 6);
        for q in &n {
            assert_eq!(p.manhattan(*q), 1);
        }
        // All distinct.
        let mut sorted = n.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn neighbors_exact_size() {
        let mut it = pt1(0).neighbors();
        assert_eq!(it.len(), 2);
        it.next();
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn arithmetic_and_indexing() {
        let a = pt2(1, 2);
        let b = pt2(10, 20);
        assert_eq!(a + b, pt2(11, 22));
        assert_eq!(b - a, pt2(9, 18));
        assert_eq!(b[0], 10);
        assert_eq!(Point::<2>::from([7, 8]), pt2(7, 8));
        assert_eq!(a.as_ref(), &[1, 2]);
    }

    #[test]
    fn step_moves_along_axis() {
        assert_eq!(pt2(0, 0).step(1, -3), pt2(0, -3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn step_bad_axis_panics() {
        let _ = pt1(0).step(1, 1);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(pt2(3, -1).to_string(), "(3,-1)");
        assert_eq!(format!("{:?}", pt1(4)), "Point[4]");
    }

    #[test]
    fn norm_and_coord_sum() {
        assert_eq!(pt3(1, -2, 3).l1_norm(), 6);
        assert_eq!(pt3(1, -2, 3).coord_sum(), 2);
        assert_eq!(Point::<3>::origin().l1_norm(), 0);
        assert_eq!(Point::<2>::default(), pt2(0, 0));
    }
}
