//! Campaign runner: a panel of named `cmvrp simulate` runs with
//! checkpointing, bounded-backoff retries, and a dead-letter list.
//!
//! A campaign spec is a hand-rolled sectioned key/value file:
//!
//! ```text
//! # keys before the first section are defaults for every run
//! checkpoint_every = 2
//! retries = 2
//! backoff_ms = 50
//!
//! [hot-point]
//! workload = point:grid=12,demand=160
//! threads = 2
//! schedule = steal
//! ```
//!
//! Four keys steer the runner itself — `checkpoint_every` (round cadence
//! of snapshots), `retries` (extra attempts after the first), `backoff_ms`
//! (base of the bounded exponential pause between attempts), and
//! `inject_kill` (fault injection: SIGKILL the run after its next
//! checkpoint lands, for the first N attempts — the recovery smoke test).
//! `workload` names the simulate workload spec and is required — either
//! the inline `shape:key=value,...` syntax or `@scenario.toml`, a
//! (fault-free) scenario file that the simulate subprocess parses with
//! the same `Scenario` entry point as every other frontend. Every
//! other key becomes a `cmvrp simulate` flag: `k = v` is passed as
//! `--k=v`, and `k = true` as the bare flag `--k`.
//!
//! Each run checkpoints into `<dir>/<name>.cmvc` and its trace (if the
//! spec asks for one) wherever the spec says. A failed or killed attempt
//! retries *from the last checkpoint* — the executor passes
//! `--resume-from` whenever the checkpoint file exists — so recovery
//! replays only the tail. Runs that exhaust their retry budget are parked
//! in the dead-letter list, persisted to `<dir>/state.tsv`; `cmvrp
//! campaign status` renders it and `cmvrp campaign retry-dead` grants the
//! dead runs a fresh budget.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// One named run from a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Section name — the run's identity in state and file names.
    pub name: String,
    /// The `cmvrp simulate` workload spec (`shape:key=value,...` or
    /// `@scenario.toml`).
    pub workload: String,
    /// Extra simulate flags, already rendered (`--threads=2`, `--check`).
    pub args: Vec<String>,
    /// Checkpoint cadence in rounds.
    pub checkpoint_every: u64,
    /// Extra attempts after the first before the run goes dead.
    pub retries: u32,
    /// Base of the bounded exponential backoff between attempts.
    pub backoff_ms: u64,
    /// Fault injection: SIGKILL the child after its next checkpoint
    /// lands, for the first N attempts.
    pub inject_kill: u32,
}

/// A parsed campaign: the runs in spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The runs, in the order their sections appear.
    pub runs: Vec<RunSpec>,
}

/// Default checkpoint cadence when neither the defaults block nor the run
/// sets `checkpoint_every`.
const DEFAULT_EVERY: u64 = 1;
/// Default retry budget.
const DEFAULT_RETRIES: u32 = 2;
/// Default backoff base.
const DEFAULT_BACKOFF_MS: u64 = 100;

/// The backoff is bounded: the pause before attempt `n` is
/// `backoff_ms · 2^(n-1)`, capped at `backoff_ms · 2^BACKOFF_CAP_DOUBLINGS`.
const BACKOFF_CAP_DOUBLINGS: u32 = 3;

/// Pause before retry `attempt` (1-based), in milliseconds.
pub fn backoff_for(backoff_ms: u64, attempt: u32) -> u64 {
    backoff_ms.saturating_mul(1 << attempt.saturating_sub(1).min(BACKOFF_CAP_DOUBLINGS))
}

/// Parses a campaign spec. Errors carry the 1-based line number and name
/// what was expected.
pub fn parse_spec(text: &str) -> Result<CampaignSpec, String> {
    struct Section {
        name: String,
        line: usize,
        workload: Option<String>,
        args: Vec<String>,
        every: Option<u64>,
        retries: Option<u32>,
        backoff_ms: Option<u64>,
        inject_kill: Option<u32>,
    }
    let mut defaults = Section {
        name: String::new(),
        line: 0,
        workload: None,
        args: Vec::new(),
        every: None,
        retries: None,
        backoff_ms: None,
        inject_kill: None,
    };
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| format!("spec line {n}: section header {line:?} misses ']'"))?
                .trim();
            if name.is_empty() {
                return Err(format!("spec line {n}: empty run name"));
            }
            if sections.iter().any(|s| s.name == name) {
                return Err(format!("spec line {n}: duplicate run name {name:?}"));
            }
            sections.push(Section {
                name: name.to_string(),
                line: n,
                workload: None,
                args: Vec::new(),
                every: None,
                retries: None,
                backoff_ms: None,
                inject_kill: None,
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("spec line {n}: expected `key = value`, got {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() || value.is_empty() {
            return Err(format!(
                "spec line {n}: expected `key = value`, got {line:?}"
            ));
        }
        let target = sections.last_mut().unwrap_or(&mut defaults);
        let bad = |what: &str| format!("spec line {n}: {key} needs {what}, got {value:?}");
        match key {
            "workload" => target.workload = Some(value.to_string()),
            "checkpoint_every" => {
                target.every = Some(value.parse().map_err(|_| bad("a round count >= 1"))?);
                if target.every == Some(0) {
                    return Err(bad("a round count >= 1"));
                }
            }
            "retries" => target.retries = Some(value.parse().map_err(|_| bad("a count"))?),
            "backoff_ms" => {
                target.backoff_ms = Some(value.parse().map_err(|_| bad("milliseconds"))?)
            }
            "inject_kill" => target.inject_kill = Some(value.parse().map_err(|_| bad("a count"))?),
            _ => target.args.push(if value == "true" {
                format!("--{key}")
            } else {
                format!("--{key}={value}")
            }),
        }
    }
    if sections.is_empty() {
        return Err("spec has no runs: add a `[name]` section per run".to_string());
    }
    let runs = sections
        .into_iter()
        .map(|s| {
            let workload = s
                .workload
                .or_else(|| defaults.workload.clone())
                .ok_or(format!(
                    "spec line {}: run {:?} has no `workload = shape:...` key",
                    s.line, s.name
                ))?;
            // Defaults first so a run's own flags win by coming later.
            let mut args = defaults.args.clone();
            args.extend(s.args);
            Ok(RunSpec {
                name: s.name,
                workload,
                args,
                checkpoint_every: s.every.or(defaults.every).unwrap_or(DEFAULT_EVERY),
                retries: s.retries.or(defaults.retries).unwrap_or(DEFAULT_RETRIES),
                backoff_ms: s
                    .backoff_ms
                    .or(defaults.backoff_ms)
                    .unwrap_or(DEFAULT_BACKOFF_MS),
                inject_kill: s.inject_kill.or(defaults.inject_kill).unwrap_or(0),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CampaignSpec { runs })
}

/// Outcome of one attempt of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The run finished cleanly.
    Completed,
    /// The run failed or was killed; the string says how.
    Failed(String),
}

/// How the runner executes a single attempt — a trait so the retry/DLQ
/// machinery is unit-testable without spawning processes.
pub trait Executor {
    /// Runs one attempt. `resume` is true when the checkpoint file exists
    /// and the attempt should continue from it.
    fn attempt(
        &mut self,
        run: &RunSpec,
        ckpt_path: &Path,
        resume: bool,
        attempt: u32,
    ) -> AttemptOutcome;

    /// Pauses between attempts; the default sleeps for real.
    fn pause(&mut self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Terminal state of one run after the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Run name from the spec.
    pub name: String,
    /// True when the run completed; false when it is in the dead-letter
    /// list.
    pub done: bool,
    /// Attempts consumed (including the successful one).
    pub attempts: u32,
    /// Last failure message (empty for completed runs).
    pub error: String,
}

impl fmt::Display for RunRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{}\t{}\t{}",
            self.name,
            if self.done { "done" } else { "dead" },
            self.attempts,
            self.error.replace(['\t', '\n'], " ")
        )
    }
}

/// Runs every run in `spec`, checkpointing into `dir`, retrying failures
/// from their last checkpoint, and parking retry-exhausted runs in the
/// dead-letter list. `progress` receives one line per attempt and
/// verdict. Returns the records in spec order.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    exec: &mut dyn Executor,
    progress: &mut dyn FnMut(&str),
) -> Vec<RunRecord> {
    spec.runs
        .iter()
        .map(|run| retry_run(run, dir, exec, progress))
        .collect()
}

/// One run's full attempt/retry/dead-letter lifecycle.
fn retry_run(
    run: &RunSpec,
    dir: &Path,
    exec: &mut dyn Executor,
    progress: &mut dyn FnMut(&str),
) -> RunRecord {
    let ckpt_path = dir.join(format!("{}.cmvc", run.name));
    let mut attempts = 0u32;
    loop {
        let resume = ckpt_path.exists();
        progress(&format!(
            "{}: attempt {}{}",
            run.name,
            attempts + 1,
            if resume {
                " (resuming from checkpoint)"
            } else {
                ""
            }
        ));
        let outcome = exec.attempt(run, &ckpt_path, resume, attempts);
        attempts += 1;
        match outcome {
            AttemptOutcome::Completed => {
                progress(&format!("{}: done after {attempts} attempt(s)", run.name));
                return RunRecord {
                    name: run.name.clone(),
                    done: true,
                    attempts,
                    error: String::new(),
                };
            }
            AttemptOutcome::Failed(error) => {
                if attempts > run.retries {
                    progress(&format!(
                        "{}: dead after {attempts} attempt(s): {error}",
                        run.name
                    ));
                    return RunRecord {
                        name: run.name.clone(),
                        done: false,
                        attempts,
                        error,
                    };
                }
                let pause = backoff_for(run.backoff_ms, attempts);
                progress(&format!(
                    "{}: attempt {attempts} failed ({error}); retrying in {pause}ms",
                    run.name
                ));
                exec.pause(pause);
            }
        }
    }
}

/// Persists campaign records to `<dir>/state.tsv` (one tab-separated line
/// per run: name, done|dead, attempts, error).
pub fn save_state(dir: &Path, records: &[RunRecord]) -> io::Result<()> {
    let text: String = records.iter().map(|r| format!("{r}\n")).collect();
    fs::write(state_path(dir), text)
}

/// Loads campaign records from `<dir>/state.tsv`.
pub fn load_state(dir: &Path) -> Result<Vec<RunRecord>, String> {
    let path = state_path(dir);
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read campaign state {}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            let mut it = line.splitn(4, '\t');
            let mut parse = || -> Option<RunRecord> {
                let name = it.next()?.to_string();
                let done = match it.next()? {
                    "done" => true,
                    "dead" => false,
                    _ => return None,
                };
                let attempts = it.next()?.parse().ok()?;
                Some(RunRecord {
                    name,
                    done,
                    attempts,
                    error: it.next().unwrap_or("").to_string(),
                })
            };
            parse().ok_or_else(|| {
                format!(
                    "{}:{}: expected `name<TAB>done|dead<TAB>attempts<TAB>error`",
                    path.display(),
                    i + 1
                )
            })
        })
        .collect()
}

fn state_path(dir: &Path) -> PathBuf {
    dir.join("state.tsv")
}

/// The real executor: spawns `cmvrp simulate` subprocesses.
#[derive(Debug, Clone)]
pub struct ProcessExecutor {
    /// The `cmvrp` binary to spawn — normally `std::env::current_exe()`,
    /// overridable for tests and cross-binary setups.
    pub bin: PathBuf,
}

impl ProcessExecutor {
    /// Builds the simulate argv for one attempt.
    fn argv(&self, run: &RunSpec, ckpt_path: &Path, resume: bool) -> Vec<String> {
        let mut argv = vec!["simulate".to_string(), run.workload.clone()];
        argv.extend(run.args.iter().cloned());
        argv.push(format!("--checkpoint={}", ckpt_path.display()));
        argv.push(format!("--checkpoint-every={}", run.checkpoint_every));
        if resume {
            argv.push(format!("--resume-from={}", ckpt_path.display()));
        }
        argv
    }

    /// Rounds recorded in the checkpoint file, or `None` while it does not
    /// exist / is mid-rename.
    fn ckpt_round(path: &Path) -> Option<u64> {
        crate::codec::read_checkpoint(path)
            .ok()
            .map(|c| c.rounds_completed)
    }
}

impl Executor for ProcessExecutor {
    fn attempt(
        &mut self,
        run: &RunSpec,
        ckpt_path: &Path,
        resume: bool,
        attempt: u32,
    ) -> AttemptOutcome {
        let argv = self.argv(run, ckpt_path, resume);
        let mut cmd = Command::new(&self.bin);
        cmd.args(&argv)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => return AttemptOutcome::Failed(format!("cannot spawn {:?}: {e}", self.bin)),
        };
        // Fault injection: once the run lands a *new* checkpoint, kill it
        // mid-flight. The atomic rename in the codec guarantees the poll
        // only ever reads complete snapshots.
        if attempt < run.inject_kill {
            let before = Self::ckpt_round(ckpt_path);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                if let Ok(Some(_)) = child.try_wait() {
                    break; // finished before the next checkpoint; judge normally
                }
                if Self::ckpt_round(ckpt_path) > before {
                    let _ = child.kill();
                    let _ = child.wait();
                    return AttemptOutcome::Failed(
                        "killed by fault injection after checkpoint".to_string(),
                    );
                }
                if std::time::Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let out = match child.wait_with_output() {
            Ok(o) => o,
            Err(e) => return AttemptOutcome::Failed(format!("wait failed: {e}")),
        };
        if out.status.success() {
            return AttemptOutcome::Completed;
        }
        let stderr = String::from_utf8_lossy(&out.stderr);
        let last = stderr.lines().last().unwrap_or("").trim();
        AttemptOutcome::Failed(match out.status.code() {
            Some(code) if !last.is_empty() => format!("exit {code}: {last}"),
            Some(code) => format!("exit {code}"),
            None => "killed by signal".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# campaign defaults
checkpoint_every = 2
retries = 1
backoff_ms = 10
threads = 2

[hot]
workload = point:grid=12,demand=120
schedule = steal

[cold]
workload = uniform:grid=10,jobs=40,seed=3
retries = 0
check = true
";

    #[test]
    fn parses_sections_defaults_and_flag_rendering() {
        let spec = parse_spec(SPEC).expect("parse");
        assert_eq!(spec.runs.len(), 2);
        let hot = &spec.runs[0];
        assert_eq!(hot.name, "hot");
        assert_eq!(hot.workload, "point:grid=12,demand=120");
        assert_eq!(hot.args, vec!["--threads=2", "--schedule=steal"]);
        assert_eq!(
            (hot.checkpoint_every, hot.retries, hot.backoff_ms),
            (2, 1, 10)
        );
        let cold = &spec.runs[1];
        assert_eq!(cold.retries, 0);
        assert_eq!(cold.args, vec!["--threads=2", "--check"]);
    }

    #[test]
    fn scenario_file_workloads_pass_through_to_simulate_unchanged() {
        // `workload = @scenarios/f.toml` is not interpreted by the
        // campaign parser — the spec string travels verbatim into the
        // simulate subprocess argv, where the shared Scenario entry
        // point resolves it.
        let spec = parse_spec("[quake]\nworkload = @scenarios/earthquake.toml\nthreads = 2\n")
            .expect("parse");
        let run = &spec.runs[0];
        assert_eq!(run.workload, "@scenarios/earthquake.toml");
        let exec = ProcessExecutor {
            bin: PathBuf::from("cmvrp"),
        };
        let argv = exec.argv(run, Path::new("/tmp/q.cmvc"), false);
        assert_eq!(argv[0], "simulate");
        assert_eq!(argv[1], "@scenarios/earthquake.toml");
        assert!(argv.contains(&"--threads=2".to_string()));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_spec("[a]\nworkload point\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("key = value"), "{err}");
        let err = parse_spec("[a]\nthreads = 2\n").unwrap_err();
        assert!(err.contains("no `workload"), "{err}");
        let err = parse_spec("[a]\nworkload = x\n[a]\nworkload = y\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = parse_spec("# empty\n").unwrap_err();
        assert!(err.contains("no runs"), "{err}");
        let err = parse_spec("[a]\nworkload = x\ncheckpoint_every = 0\n").unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
    }

    #[test]
    fn backoff_doubles_and_is_bounded() {
        assert_eq!(backoff_for(100, 1), 100);
        assert_eq!(backoff_for(100, 2), 200);
        assert_eq!(backoff_for(100, 4), 800);
        assert_eq!(backoff_for(100, 40), 800); // capped
    }

    /// Scripted executor: a queue of outcomes per run, recording calls.
    struct Fake {
        script: Vec<(String, AttemptOutcome)>,
        calls: Vec<(String, bool, u32)>,
        pauses: Vec<u64>,
        touch_ckpt_on_fail: bool,
    }

    impl Executor for Fake {
        fn attempt(
            &mut self,
            run: &RunSpec,
            ckpt_path: &Path,
            resume: bool,
            attempt: u32,
        ) -> AttemptOutcome {
            self.calls.push((run.name.clone(), resume, attempt));
            let i = self
                .script
                .iter()
                .position(|(n, _)| n == &run.name)
                .expect("scripted outcome");
            let (_, outcome) = self.script.remove(i);
            if self.touch_ckpt_on_fail && matches!(outcome, AttemptOutcome::Failed(_)) {
                fs::write(ckpt_path, b"stub").expect("touch checkpoint");
            }
            outcome
        }

        fn pause(&mut self, ms: u64) {
            self.pauses.push(ms); // no real sleeping in tests
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmvrp-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn failed_runs_retry_from_checkpoint_then_dead_letter() {
        let dir = tmpdir("dlq");
        let spec = parse_spec(
            "retries = 1\nbackoff_ms = 10\n\
             [flaky]\nworkload = w\n\
             [doomed]\nworkload = w\n\
             [ok]\nworkload = w\n",
        )
        .expect("parse");
        let mut exec = Fake {
            script: vec![
                ("flaky".into(), AttemptOutcome::Failed("boom".into())),
                ("flaky".into(), AttemptOutcome::Completed),
                ("doomed".into(), AttemptOutcome::Failed("a".into())),
                ("doomed".into(), AttemptOutcome::Failed("b".into())),
                ("ok".into(), AttemptOutcome::Completed),
            ],
            calls: Vec::new(),
            pauses: Vec::new(),
            touch_ckpt_on_fail: true,
        };
        let mut log = Vec::new();
        let records = run_campaign(&spec, &dir, &mut exec, &mut |l| log.push(l.to_string()));
        // flaky: first attempt fresh, retry resumes from the checkpoint.
        assert_eq!(exec.calls[0], ("flaky".to_string(), false, 0));
        assert_eq!(exec.calls[1], ("flaky".to_string(), true, 1));
        assert_eq!(exec.pauses, vec![10, 10]); // one per retried failure
        assert_eq!(
            records
                .iter()
                .map(|r| (r.name.as_str(), r.done, r.attempts))
                .collect::<Vec<_>>(),
            vec![("flaky", true, 2), ("doomed", false, 2), ("ok", true, 1)]
        );
        // The dead run keeps its *last* failure message.
        assert_eq!(records[1].error, "b");
        assert!(log.iter().any(|l| l.contains("resuming from checkpoint")));
        // State file round-trips.
        save_state(&dir, &records).expect("save");
        assert_eq!(load_state(&dir).expect("load"), records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_file_errors_name_the_line() {
        let dir = tmpdir("state-err");
        fs::write(state_path(&dir), "garbage with no tabs\n").expect("write");
        let err = load_state(&dir).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
