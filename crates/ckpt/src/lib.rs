#![warn(missing_docs)]

//! Checkpoint/resume subsystem for the sharded engine.
//!
//! Two halves:
//!
//! * [`codec`] — the `CMVC` on-disk checkpoint format: a versioned,
//!   length-prefixed binary encoding of [`cmvrp_engine::EngineCheckpoint`]
//!   following the same frame discipline as the `CMVB` trace format
//!   (magic + version header, varint-length-prefixed frames, scoped
//!   decode errors, append-tolerant payloads), written atomically via a
//!   temp file and rename so a crash mid-write never corrupts the last
//!   good snapshot.
//! * [`campaign`] — a panel runner: parse a hand-rolled spec of named
//!   `cmvrp simulate` runs, execute them with per-run checkpointing,
//!   retry failed or killed runs from their last checkpoint with bounded
//!   exponential backoff, and park runs that exhaust their retries in a
//!   dead-letter list persisted next to the checkpoints.
//!
//! The contract underneath both: a checkpoint taken at round `k` and
//! resumed produces a trace tail byte-identical to the uninterrupted
//! run's, so concatenating the head and tail traces equals the one-shot
//! trace (see `cmvrp-engine`'s resume tests and `cmvrp trace diff`).

pub mod campaign;
pub mod codec;

pub use campaign::{
    load_state, parse_spec, run_campaign, save_state, AttemptOutcome, CampaignSpec, Executor,
    ProcessExecutor, RunRecord, RunSpec,
};
pub use codec::{
    decode_checkpoint, encode_checkpoint, inspect, read_checkpoint, write_checkpoint, CkptError,
    CKPT_MAGIC, CKPT_VERSION,
};
