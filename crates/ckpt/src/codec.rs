//! The `CMVC` checkpoint format: [`EngineCheckpoint`] on disk.
//!
//! A checkpoint file is:
//!
//! ```text
//! magic "CMVC" (4 bytes) | version (1 byte) | run frame | shard frame*
//! frame := varint(payload_len) | payload
//! ```
//!
//! The run frame carries the whole-run header (input fingerprint, round /
//! epoch / trace cursors, the execution-shape stamp, and the shard
//! count); each shard frame carries one [`ShardCheckpoint`] with its
//! vehicles inline. All integer fields are LEB128 varints; signed values
//! (cube and position coordinates) are zigzag-mapped first, coordinate
//! vectors are `varint(len)` + zigzag elements, optional values a single
//! tag byte (0 = absent, 1 = present), and the one `u128` field
//! (`delay_sum`) is split into low/high `u64` halves. The same
//! append-only discipline as the `CMVB` trace format applies: decoders
//! ignore trailing bytes inside a frame so later versions can append
//! fields, while an empty frame, an unknown enum byte, or a bumped
//! version byte is a hard error.
//!
//! [`write_checkpoint`] is atomic — the bytes go to a `.tmp` sibling
//! which is then renamed over the destination — so a crash mid-write
//! leaves the previous snapshot intact, which is what makes
//! checkpoint-cadence fault recovery sound.

use cmvrp_engine::{EngineCheckpoint, Schedule, ShardCheckpoint, VehicleCheckpoint};
use cmvrp_online::WorkState;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The four magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: [u8; 4] = *b"CMVC";

/// The format version this build writes and the highest it reads.
pub const CKPT_VERSION: u8 = 1;

// ---- varint primitives (same discipline as the CMVB trace format) ----

fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, zigzag(v));
}

fn put_pos(buf: &mut Vec<u8>, pos: &[i64]) {
    put_u64(buf, pos.len() as u64);
    for &c in pos {
        put_i64(buf, c);
    }
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_opt_pair(buf: &mut Vec<u8>, v: &Option<(u64, u64)>) {
    match v {
        None => buf.push(0),
        Some((a, b)) => {
            buf.push(1);
            put_u64(buf, *a);
            put_u64(buf, *b);
        }
    }
}

fn put_opt_pos(buf: &mut Vec<u8>, v: &Option<Vec<i64>>) {
    match v {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            put_pos(buf, p);
        }
    }
}

/// A scoped decode error: `frame` is 1-based (frame 0 means the 5-byte
/// header itself was bad) and `offset` is the absolute byte position the
/// error was detected at, mirroring the binary trace format's errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptError {
    /// 1-based index of the offending frame; 0 for header errors.
    pub frame: usize,
    /// Absolute byte offset where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frame == 0 {
            write!(f, "header at byte {}: {}", self.offset, self.msg)
        } else {
            write!(
                f,
                "frame {} at byte {}: {}",
                self.frame, self.offset, self.msg
            )
        }
    }
}

impl std::error::Error for CkptError {}

/// Bounds-checked cursor over one frame's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute offset of `bytes[0]` in the file, for error reporting.
    base: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> (usize, String) {
        (self.base + self.pos, msg.into())
    }

    fn u8(&mut self) -> Result<u8, (usize, String)> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("payload truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, (usize, String)> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.err("varint longer than 10 bytes"));
            }
        }
    }

    fn i64(&mut self) -> Result<i64, (usize, String)> {
        Ok(unzigzag(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, (usize, String)> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} overflows usize")))
    }

    fn pos_arr(&mut self) -> Result<Vec<i64>, (usize, String)> {
        let len = self.usize()?;
        // Each element is ≥1 byte; reject lengths the payload cannot hold
        // before allocating.
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.err(format!("array length {len} exceeds payload")));
        }
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            arr.push(self.i64()?);
        }
        Ok(arr)
    }

    fn u64_arr(&mut self) -> Result<Vec<u64>, (usize, String)> {
        let len = self.usize()?;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.err(format!("array length {len} exceeds payload")));
        }
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            arr.push(self.u64()?);
        }
        Ok(arr)
    }

    fn bool(&mut self) -> Result<bool, (usize, String)> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("bad bool byte {other}"))),
        }
    }

    fn opt_pair(&mut self) -> Result<Option<(u64, u64)>, (usize, String)> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some((self.u64()?, self.u64()?))),
            other => Err(self.err(format!("bad option tag {other}"))),
        }
    }

    fn opt_pos(&mut self) -> Result<Option<Vec<i64>>, (usize, String)> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.pos_arr()?)),
            other => Err(self.err(format!("bad option tag {other}"))),
        }
    }

    fn schedule(&mut self) -> Result<Schedule, (usize, String)> {
        match self.u8()? {
            0 => Ok(Schedule::Static),
            1 => Ok(Schedule::Steal),
            2 => Ok(Schedule::Rebalance),
            other => Err(self.err(format!("unknown schedule byte {other}"))),
        }
    }

    fn work(&mut self) -> Result<WorkState, (usize, String)> {
        match self.u8()? {
            0 => Ok(WorkState::Idle),
            1 => Ok(WorkState::Active),
            2 => Ok(WorkState::Done),
            other => Err(self.err(format!("unknown work-state byte {other}"))),
        }
    }
}

fn schedule_byte(s: Schedule) -> u8 {
    match s {
        Schedule::Static => 0,
        Schedule::Steal => 1,
        Schedule::Rebalance => 2,
    }
}

fn work_byte(w: WorkState) -> u8 {
    match w {
        WorkState::Idle => 0,
        WorkState::Active => 1,
        WorkState::Done => 2,
    }
}

// ---- encode ----

fn encode_vehicle(buf: &mut Vec<u8>, v: &VehicleCheckpoint) {
    put_u64(buf, v.global_id);
    put_pos(buf, &v.pos);
    buf.push(work_byte(v.work));
    put_u64(buf, v.energy_used);
    put_u64(buf, v.moves);
    put_u64(buf, v.serves);
    put_opt_pair(buf, &v.claimed_by);
    put_opt_pos(buf, &v.summon_dest);
    put_bool(buf, v.failed_search);
    put_opt_pos(buf, &v.arrived);
    put_u64(buf, v.neighbors.len() as u64);
    for &n in &v.neighbors {
        put_u64(buf, n);
    }
    for &c in &v.msg_counts {
        put_u64(buf, c);
    }
    put_u64(buf, v.diffusions.0);
    put_u64(buf, v.diffusions.1);
    put_u64(buf, v.diffusions.2);
    put_opt_pair(buf, &v.engine_init);
    put_u64(buf, v.engine_next_generation);
}

fn encode_shard(buf: &mut Vec<u8>, s: &ShardCheckpoint) {
    put_u64(buf, s.now);
    put_u64(buf, s.seq);
    put_u64(buf, s.rng_state);
    put_u64(buf, s.total_sent);
    put_u64(buf, s.total_delivered);
    put_u64(buf, s.total_lost);
    put_u64(buf, s.total_to_crashed);
    put_u64(buf, s.queue_depth_max);
    put_u64(buf, s.delay_counts.len() as u64);
    for &c in &s.delay_counts {
        put_u64(buf, c);
    }
    put_u64(buf, s.delay_count);
    put_u64(buf, s.delay_sum as u64);
    put_u64(buf, (s.delay_sum >> 64) as u64);
    put_u64(buf, s.delay_max);
    put_u64(buf, s.released);
    put_u64(buf, s.served);
    put_u64(buf, s.unserved);
    put_u64(buf, s.replacements);
    put_u64(buf, s.failed_replacements);
    put_u64(buf, s.cubes.len() as u64);
    for cube in &s.cubes {
        put_pos(buf, cube);
    }
    put_u64(buf, s.pair_active.len() as u64);
    for (cube, idx, vid) in &s.pair_active {
        put_pos(buf, cube);
        put_u64(buf, *idx);
        put_u64(buf, *vid);
    }
    put_u64(buf, s.vehicles.len() as u64);
    for v in &s.vehicles {
        encode_vehicle(buf, v);
    }
}

/// Appends one frame (varint length prefix + payload) to `out`.
fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Encodes a checkpoint into the `CMVC` byte format.
pub fn encode_checkpoint(ckpt: &EngineCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CKPT_MAGIC);
    out.push(CKPT_VERSION);
    let mut buf = Vec::new();
    put_u64(&mut buf, ckpt.fingerprint);
    put_u64(&mut buf, ckpt.rounds_completed);
    put_u64(&mut buf, ckpt.next_epoch);
    put_u64(&mut buf, ckpt.trace_events);
    put_u64(&mut buf, ckpt.threads);
    buf.push(schedule_byte(ckpt.schedule));
    put_bool(&mut buf, ckpt.checked);
    put_u64(&mut buf, ckpt.shards.len() as u64);
    put_frame(&mut out, &buf);
    for shard in &ckpt.shards {
        buf.clear();
        encode_shard(&mut buf, shard);
        put_frame(&mut out, &buf);
    }
    out
}

// ---- decode ----

fn decode_vehicle(c: &mut Cursor<'_>) -> Result<VehicleCheckpoint, (usize, String)> {
    Ok(VehicleCheckpoint {
        global_id: c.u64()?,
        pos: c.pos_arr()?,
        work: c.work()?,
        energy_used: c.u64()?,
        moves: c.u64()?,
        serves: c.u64()?,
        claimed_by: c.opt_pair()?,
        summon_dest: c.opt_pos()?,
        failed_search: c.bool()?,
        arrived: c.opt_pos()?,
        neighbors: c.u64_arr()?,
        msg_counts: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
        diffusions: (c.u64()?, c.u64()?, c.u64()?),
        engine_init: c.opt_pair()?,
        engine_next_generation: c.u64()?,
    })
}

fn decode_shard(c: &mut Cursor<'_>) -> Result<ShardCheckpoint, (usize, String)> {
    let now = c.u64()?;
    let seq = c.u64()?;
    let rng_state = c.u64()?;
    let total_sent = c.u64()?;
    let total_delivered = c.u64()?;
    let total_lost = c.u64()?;
    let total_to_crashed = c.u64()?;
    let queue_depth_max = c.u64()?;
    let delay_counts = c.u64_arr()?;
    let delay_count = c.u64()?;
    let sum_lo = c.u64()?;
    let sum_hi = c.u64()?;
    let delay_max = c.u64()?;
    let released = c.u64()?;
    let served = c.u64()?;
    let unserved = c.u64()?;
    let replacements = c.u64()?;
    let failed_replacements = c.u64()?;
    let n_cubes = c.usize()?;
    let mut cubes = Vec::with_capacity(n_cubes.min(1 << 16));
    for _ in 0..n_cubes {
        cubes.push(c.pos_arr()?);
    }
    let n_pairs = c.usize()?;
    let mut pair_active = Vec::with_capacity(n_pairs.min(1 << 16));
    for _ in 0..n_pairs {
        pair_active.push((c.pos_arr()?, c.u64()?, c.u64()?));
    }
    let n_vehicles = c.usize()?;
    let mut vehicles = Vec::with_capacity(n_vehicles.min(1 << 16));
    for _ in 0..n_vehicles {
        vehicles.push(decode_vehicle(c)?);
    }
    Ok(ShardCheckpoint {
        now,
        seq,
        rng_state,
        total_sent,
        total_delivered,
        total_lost,
        total_to_crashed,
        queue_depth_max,
        delay_counts,
        delay_count,
        delay_sum: u128::from(sum_lo) | (u128::from(sum_hi) << 64),
        delay_max,
        released,
        served,
        unserved,
        replacements,
        failed_replacements,
        cubes,
        pair_active,
        vehicles,
    })
}

/// A decoded frame: its 1-based index, payload slice, and the payload's
/// absolute byte offset in the file (for scoped errors).
type Frame<'a> = (usize, &'a [u8], usize);

/// Yields `(frame_index, payload, payload_base)` triples over the byte
/// stream after the header, replicating the trace reader's frame errors.
struct Frames<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: usize,
}

impl<'a> Frames<'a> {
    fn next_frame(&mut self) -> Option<Result<Frame<'a>, CkptError>> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        self.frame += 1;
        let frame_start = self.pos;
        let fail = |offset: usize, msg: String| CkptError {
            frame: self.frame,
            offset,
            msg,
        };
        // Decode the length varint inline so truncation inside it is
        // reported on the frame, not as a payload error.
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Some(Err(fail(frame_start, "truncated frame length".to_string())));
            };
            self.pos += 1;
            if shift == 63 && b > 1 {
                return Some(Err(fail(
                    frame_start,
                    "frame length overflows u64".to_string(),
                )));
            }
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                return Some(Err(fail(
                    frame_start,
                    "frame length overflows u64".to_string(),
                )));
            }
        }
        if len == 0 {
            return Some(Err(fail(frame_start, "empty frame".to_string())));
        }
        let remaining = self.bytes.len() - self.pos;
        let len = len as usize;
        if len > remaining {
            return Some(Err(fail(
                frame_start,
                format!("frame length {len} exceeds remaining {remaining} bytes"),
            )));
        }
        let payload = &self.bytes[self.pos..self.pos + len];
        let base = self.pos;
        self.pos += len;
        Some(Ok((self.frame, payload, base)))
    }
}

/// Decodes a `CMVC` byte stream back into an [`EngineCheckpoint`].
/// Never panics: corrupt or truncated input comes back as a scoped
/// [`CkptError`]. Trailing bytes inside a frame and extra frames after
/// the last shard are ignored (append-tolerant schema evolution).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<EngineCheckpoint, CkptError> {
    if bytes.len() < 5 {
        return Err(CkptError {
            frame: 0,
            offset: 0,
            msg: format!("truncated header: {} bytes, need 5", bytes.len()),
        });
    }
    if bytes[..4] != CKPT_MAGIC {
        return Err(CkptError {
            frame: 0,
            offset: 0,
            msg: format!("bad magic {:?}, expected {CKPT_MAGIC:?}", &bytes[..4]),
        });
    }
    if bytes[4] > CKPT_VERSION {
        return Err(CkptError {
            frame: 0,
            offset: 4,
            msg: format!(
                "format version {} is newer than supported version {CKPT_VERSION}",
                bytes[4]
            ),
        });
    }
    let mut frames = Frames {
        bytes,
        pos: 5,
        frame: 0,
    };
    let (frame, payload, base) = frames.next_frame().ok_or_else(|| CkptError {
        frame: 1,
        offset: bytes.len(),
        msg: "missing run frame".to_string(),
    })??;
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
        base,
    };
    let header = (|| -> Result<_, (usize, String)> {
        Ok((
            c.u64()?,
            c.u64()?,
            c.u64()?,
            c.u64()?,
            c.u64()?,
            c.schedule()?,
            c.bool()?,
            c.usize()?,
        ))
    })()
    .map_err(|(offset, msg)| CkptError { frame, offset, msg })?;
    let (
        fingerprint,
        rounds_completed,
        next_epoch,
        trace_events,
        threads,
        schedule,
        checked,
        n_shards,
    ) = header;
    let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
    for i in 0..n_shards {
        let (frame, payload, base) = frames.next_frame().ok_or_else(|| CkptError {
            frame: 1 + i,
            offset: bytes.len(),
            msg: format!("checkpoint ends after {i} of {n_shards} shard frames"),
        })??;
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
            base,
        };
        shards.push(decode_shard(&mut c).map_err(|(offset, msg)| CkptError {
            frame,
            offset,
            msg,
        })?);
    }
    Ok(EngineCheckpoint {
        fingerprint,
        rounds_completed,
        next_epoch,
        trace_events,
        threads,
        schedule,
        checked,
        shards,
    })
}

// ---- file I/O ----

/// Writes `ckpt` to `path` atomically: the bytes go to a `.tmp` sibling
/// which is fsync'd-by-close and renamed over the destination, so readers
/// (and crash recovery) only ever see a complete checkpoint.
pub fn write_checkpoint(path: &Path, ckpt: &EngineCheckpoint) -> io::Result<()> {
    let bytes = encode_checkpoint(ckpt);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)
}

/// Reads and decodes a checkpoint file; errors are prefixed with the path
/// so callers can surface them verbatim.
pub fn read_checkpoint(path: &Path) -> Result<EngineCheckpoint, String> {
    let bytes =
        fs::read(path).map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    decode_checkpoint(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Renders a human-readable summary of a checkpoint — the `cmvrp ckpt
/// inspect` view.
pub fn inspect(ckpt: &EngineCheckpoint) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checkpoint at round {} (next epoch {}, {} trace events)",
        ckpt.rounds_completed, ckpt.next_epoch, ckpt.trace_events
    );
    let _ = writeln!(out, "fingerprint: {:#018x}", ckpt.fingerprint);
    let _ = writeln!(
        out,
        "written under: --threads={} --schedule={}{}",
        ckpt.threads,
        ckpt.schedule,
        if ckpt.checked { " --check" } else { "" }
    );
    let (mut released, mut served, mut unserved) = (0u64, 0u64, 0u64);
    let (mut cubes, mut vehicles, mut active) = (0usize, 0usize, 0usize);
    for s in &ckpt.shards {
        released += s.released;
        served += s.served;
        unserved += s.unserved;
        cubes += s.cubes.len();
        vehicles += s.vehicles.len();
        active += s
            .vehicles
            .iter()
            .filter(|v| v.work == WorkState::Active)
            .count();
    }
    let _ = writeln!(
        out,
        "jobs: {released} released, {served} served, {unserved} unserved"
    );
    let _ = writeln!(
        out,
        "fleet: {cubes} cubes, {vehicles} vehicles ({active} active)"
    );
    let _ = writeln!(out, "shards: {}", ckpt.shards.len());
    let _ = writeln!(out, "  id  clock  cubes  vehicles  released  served");
    for (i, s) in ckpt.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>2}  {:>5}  {:>5}  {:>8}  {:>8}  {:>6}",
            i,
            s.now,
            s.cubes.len(),
            s.vehicles.len(),
            s.released,
            s.served
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineCheckpoint {
        EngineCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            rounds_completed: 7,
            next_epoch: 41,
            trace_events: 129,
            threads: 2,
            schedule: Schedule::Steal,
            checked: true,
            shards: vec![
                ShardCheckpoint {
                    now: 40,
                    seq: 311,
                    rng_state: u64::MAX - 1,
                    total_sent: 100,
                    total_delivered: 98,
                    total_lost: 1,
                    total_to_crashed: 1,
                    queue_depth_max: 9,
                    delay_counts: vec![3, 0, 5, 90],
                    delay_count: 98,
                    delay_sum: (u128::from(u64::MAX)) + 7,
                    delay_max: 6,
                    released: 12,
                    served: 11,
                    unserved: 0,
                    replacements: 2,
                    failed_replacements: 1,
                    cubes: vec![vec![-3, 0], vec![0, 6]],
                    pair_active: vec![(vec![-3, 0], 1, 17)],
                    vehicles: vec![VehicleCheckpoint {
                        global_id: 17,
                        pos: vec![-2, 1],
                        work: WorkState::Active,
                        energy_used: 5,
                        moves: 3,
                        serves: 2,
                        claimed_by: Some((9, 4)),
                        summon_dest: None,
                        failed_search: true,
                        arrived: Some(vec![-3, 0]),
                        neighbors: vec![9, 18, 25],
                        msg_counts: [4, 3, 2, 0],
                        diffusions: (1, 1, 1),
                        engine_init: Some((17, 2)),
                        engine_next_generation: 3,
                    }],
                },
                ShardCheckpoint {
                    now: 38,
                    seq: 0,
                    rng_state: 1,
                    total_sent: 0,
                    total_delivered: 0,
                    total_lost: 0,
                    total_to_crashed: 0,
                    queue_depth_max: 0,
                    delay_counts: vec![],
                    delay_count: 0,
                    delay_sum: 0,
                    delay_max: 0,
                    released: 0,
                    served: 0,
                    unserved: 0,
                    replacements: 0,
                    failed_replacements: 0,
                    cubes: vec![],
                    pair_active: vec![],
                    vehicles: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrips_exactly() {
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).expect("decode"), ckpt);
    }

    #[test]
    fn trailing_payload_bytes_are_ignored() {
        // Append-tolerance: a future writer may add fields to the end of
        // the run frame; this reader must skip them.
        let ckpt = sample();
        let mut bytes = encode_checkpoint(&EngineCheckpoint {
            shards: vec![],
            ..ckpt.clone()
        });
        // Rebuild with two extra bytes in the run frame payload.
        let mut grown = Vec::new();
        grown.extend_from_slice(&bytes[..4]);
        grown.push(bytes[4]);
        let old_len = bytes[5] as usize; // single-byte varint for this size
        grown.push((old_len + 2) as u8);
        grown.extend_from_slice(&bytes[6..6 + old_len]);
        grown.extend_from_slice(&[0xAA, 0xBB]);
        bytes = grown;
        let decoded = decode_checkpoint(&bytes).expect("decode with trailing bytes");
        assert_eq!(decoded.fingerprint, ckpt.fingerprint);
    }

    #[test]
    fn extra_frames_after_the_last_shard_are_ignored() {
        let ckpt = sample();
        let mut bytes = encode_checkpoint(&ckpt);
        bytes.extend_from_slice(&[3, 1, 2, 3]); // one extra 3-byte frame
        assert_eq!(decode_checkpoint(&bytes).expect("decode"), ckpt);
    }

    #[test]
    fn missing_shard_frames_are_a_scoped_error() {
        let ckpt = sample();
        let bytes = encode_checkpoint(&ckpt);
        // Chop the file right after the run frame.
        let run_frame_end = 6 + bytes[5] as usize;
        let err = decode_checkpoint(&bytes[..run_frame_end]).unwrap_err();
        assert!(err.msg.contains("0 of 2 shard frames"), "{err}");
    }

    #[test]
    fn inspect_summarizes_the_run() {
        let text = inspect(&sample());
        assert!(text.contains("round 7"), "{text}");
        assert!(
            text.contains("--threads=2 --schedule=steal --check"),
            "{text}"
        );
        assert!(text.contains("2 cubes, 1 vehicles (1 active)"), "{text}");
    }

    #[test]
    fn file_roundtrip_is_atomic_over_existing_snapshots() {
        let dir = std::env::temp_dir().join(format!("cmvc-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.cmvc");
        let first = sample();
        write_checkpoint(&path, &first).expect("write");
        let mut second = sample();
        second.rounds_completed = 9;
        write_checkpoint(&path, &second).expect("overwrite");
        assert_eq!(read_checkpoint(&path).expect("read"), second);
        assert!(!path.with_extension("cmvc.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
