//! Edge cases for the `CMVC` checkpoint decoder: every truncation and
//! corruption shape must come back as a scoped [`CkptError`], never a
//! panic, both from bytes and through the filesystem path.

use cmvrp_ckpt::{
    decode_checkpoint, encode_checkpoint, read_checkpoint, write_checkpoint, CKPT_MAGIC,
    CKPT_VERSION,
};
use cmvrp_engine::{EngineCheckpoint, Schedule};

fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("cmvrp_ckpt_{name}"));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// A minimal but real checkpoint (no shards) for corruption tests.
fn sample_bytes() -> Vec<u8> {
    encode_checkpoint(&EngineCheckpoint {
        fingerprint: 0x1234_5678_9abc_def0,
        rounds_completed: 3,
        next_epoch: 17,
        trace_events: 44,
        threads: 2,
        schedule: Schedule::Static,
        checked: false,
        shards: vec![],
    })
}

#[test]
fn zero_byte_file_is_a_scoped_error() {
    let err = decode_checkpoint(b"").unwrap_err();
    assert_eq!(err.frame, 0);
    assert_eq!(err.msg, "truncated header: 0 bytes, need 5");
    let path = tmp("empty.cmvc", b"");
    let err = read_checkpoint(&path).unwrap_err();
    // Through the path API the error is prefixed with the file name.
    assert!(err.contains("empty.cmvc"), "{err}");
    assert!(err.contains("truncated header"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_shorter_than_the_magic_is_a_scoped_error() {
    // Every strict prefix of the CMVC header is a header error, not a
    // panic — including prefixes of the magic itself.
    for len in 1..5 {
        let err = decode_checkpoint(&sample_bytes()[..len]).unwrap_err();
        assert_eq!(err.frame, 0, "prefix len {len}");
        assert_eq!(err.msg, format!("truncated header: {len} bytes, need 5"));
    }
}

#[test]
fn wrong_magic_is_a_scoped_error() {
    // A binary *trace* handed to the checkpoint reader must say so.
    let err = decode_checkpoint(b"CMVB\x01").unwrap_err();
    assert_eq!(err.frame, 0);
    assert!(err.msg.contains("bad magic"), "{}", err.msg);
    assert!(
        err.msg.contains("CMVC") || err.msg.contains("67"),
        "{}",
        err.msg
    );
}

#[test]
fn version_from_the_future_is_a_scoped_error() {
    let mut bytes = sample_bytes();
    bytes[4] = CKPT_VERSION + 1;
    let err = decode_checkpoint(&bytes).unwrap_err();
    assert_eq!(err.frame, 0);
    assert_eq!(err.offset, 4);
    assert_eq!(
        err.msg,
        format!(
            "format version {} is newer than supported version {CKPT_VERSION}",
            CKPT_VERSION + 1
        )
    );
}

#[test]
fn truncated_frame_mid_varint_is_a_scoped_error() {
    // A multi-byte length varint whose continuation bit promises more
    // bytes than the file has: a crash mid-write of the length itself.
    let mut bytes = CKPT_MAGIC.to_vec();
    bytes.push(CKPT_VERSION);
    bytes.push(0x80); // "length continues" … and then nothing
    let err = decode_checkpoint(&bytes).unwrap_err();
    assert_eq!(err.frame, 1);
    assert_eq!(err.msg, "truncated frame length");
}

#[test]
fn truncated_payload_is_a_scoped_error() {
    // Chop the run frame's payload mid-field.
    let bytes = sample_bytes();
    let err = decode_checkpoint(&bytes[..bytes.len() - 1]).unwrap_err();
    assert_eq!(err.frame, 1);
    assert!(
        err.msg.contains("exceeds remaining") || err.msg.contains("payload truncated"),
        "{}",
        err.msg
    );
}

#[test]
fn empty_frame_is_a_scoped_error() {
    let mut bytes = CKPT_MAGIC.to_vec();
    bytes.push(CKPT_VERSION);
    bytes.push(0); // zero-length frame
    let err = decode_checkpoint(&bytes).unwrap_err();
    assert_eq!(err.frame, 1);
    assert_eq!(err.msg, "empty frame");
}

#[test]
fn unknown_schedule_byte_is_a_scoped_error() {
    let mut bytes = sample_bytes();
    // The schedule byte sits right before the trailing checked byte and
    // shard count in the run frame; find it by decoding a mutant at every
    // position until the error names it (robust to varint widths).
    let mut seen = false;
    for i in 6..bytes.len() {
        let keep = bytes[i];
        bytes[i] = 9;
        if let Err(e) = decode_checkpoint(&bytes) {
            if e.msg.contains("unknown schedule byte 9") {
                assert_eq!(e.frame, 1);
                seen = true;
            }
        }
        bytes[i] = keep;
    }
    assert!(seen, "no mutation produced a schedule error");
}

#[test]
fn write_then_read_roundtrips_through_the_path_api() {
    let dir = std::env::temp_dir().join(format!("cmvrp_ckpt_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.cmvc");
    let ckpt = decode_checkpoint(&sample_bytes()).unwrap();
    write_checkpoint(&path, &ckpt).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), ckpt);
    let _ = std::fs::remove_dir_all(&dir);
}
