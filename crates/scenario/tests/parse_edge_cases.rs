//! Parser edge cases: every rejection is line/column-scoped to the
//! offending token and names the supported alternatives.

use cmvrp_scenario::{ArrivalSpec, Baseline, Scenario, ScenarioError};

fn parse_err(text: &str) -> ScenarioError {
    Scenario::parse_file(text).expect_err("scenario must be rejected")
}

const MINIMAL: &str = "[substrate]\nside = 9\n[demand]\nshape = point\ndemand = 5\n";

#[test]
fn minimal_scenario_parses_with_defaults() {
    let sc = Scenario::parse_file(MINIMAL).unwrap();
    assert_eq!(sc.name, None);
    assert_eq!(sc.side(), 9);
    assert_eq!(sc.arrivals, ArrivalSpec::Batch { seed: None });
    assert!(sc.faults.is_empty());
    assert_eq!(sc.report.baselines, vec![Baseline::Becker, Baseline::Gn]);
}

#[test]
fn comments_whitespace_and_quotes_are_tolerated() {
    let text = "# a scenario\nname = \"quoted name\"   # trailing comment\n\n\
                [substrate]   \n  side   =   9\n[demand]\nshape = \"point\"\ndemand = 5\n";
    let sc = Scenario::parse_file(text).unwrap();
    assert_eq!(sc.name.as_deref(), Some("quoted name"));
    assert_eq!(sc.side(), 9);
}

#[test]
fn unknown_section_names_the_supported_set() {
    let e = parse_err("[blob]\nside = 9\n");
    assert_eq!((e.line, e.col), (1, 2));
    assert!(e.msg.contains("unknown section [blob]"), "{e}");
    assert!(
        e.msg
            .contains("[substrate], [demand], [arrivals], [faults], [report]"),
        "{e}"
    );
    assert_eq!(e.to_string(), format!("scenario line 1, col 2: {}", e.msg));
}

#[test]
fn duplicate_section_points_back_at_the_first() {
    let e = parse_err(&format!("{MINIMAL}[demand]\nshape = point\n"));
    assert_eq!((e.line, e.col), (6, 2));
    assert!(e.msg.contains("duplicate section [demand]"), "{e}");
    assert!(e.msg.contains("first defined on line 3"), "{e}");
}

#[test]
fn duplicate_key_points_back_at_the_first() {
    let e = parse_err("[substrate]\nside = 9\nside = 10\n");
    assert_eq!((e.line, e.col), (3, 1));
    assert!(e.msg.contains("duplicate key \"side\""), "{e}");
    assert!(e.msg.contains("first set on line 2"), "{e}");
}

#[test]
fn unterminated_section_header_is_column_scoped() {
    let e = parse_err("  [substrate\nside = 9\n");
    assert_eq!((e.line, e.col), (1, 3));
    assert!(e.msg.contains("missing its `]`"), "{e}");
}

#[test]
fn non_assignment_line_is_rejected() {
    let e = parse_err("[substrate]\nside 9\n");
    assert_eq!((e.line, e.col), (2, 1));
    assert!(e.msg.contains("expected `key = value`"), "{e}");
}

#[test]
fn empty_value_is_rejected_at_the_value_column() {
    let e = parse_err("[substrate]\nside =\n");
    assert_eq!((e.line, e.col), (2, 7));
    assert!(e.msg.contains("\"side\" has an empty value"), "{e}");
}

#[test]
fn non_integer_value_is_scoped_to_the_value() {
    let e = parse_err("[substrate]\nside = nine\n");
    assert_eq!((e.line, e.col), (2, 8));
    assert!(
        e.msg.contains("side = \"nine\" is not an unsigned integer"),
        "{e}"
    );
}

#[test]
fn unknown_key_in_section_names_supported_keys() {
    let e = parse_err("[substrate]\nside = 9\nshade = 3\n[demand]\nshape = point\ndemand = 5\n");
    assert_eq!((e.line, e.col), (3, 1));
    assert!(
        e.msg.contains("unknown key \"shade\" in [substrate]"),
        "{e}"
    );
    assert!(e.msg.contains("supported keys: kind, side"), "{e}");
}

#[test]
fn unknown_top_level_key_is_rejected() {
    let e = parse_err(&format!("title = x\n{MINIMAL}"));
    assert_eq!((e.line, e.col), (1, 1));
    assert!(e.msg.contains("unknown key \"title\""), "{e}");
}

#[test]
fn missing_substrate_and_demand_sections_are_named() {
    let e = parse_err("[demand]\nshape = point\ndemand = 5\n");
    assert!(e.msg.contains("missing [substrate] section"), "{e}");
    let e = parse_err("[substrate]\nside = 9\n");
    assert!(e.msg.contains("missing [demand] section"), "{e}");
}

#[test]
fn missing_side_is_scoped_to_the_substrate_section() {
    let e = parse_err("[substrate]\nkind = grid\n[demand]\nshape = point\ndemand = 5\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("[substrate] needs side"), "{e}");
}

#[test]
fn unknown_substrate_kind_names_the_alternative() {
    let e = parse_err("[substrate]\nkind = torus\nside = 9\n[demand]\nshape = point\ndemand = 5\n");
    assert_eq!((e.line, e.col), (2, 8));
    assert!(
        e.msg
            .contains("unknown substrate kind \"torus\"; supported kinds: grid"),
        "{e}"
    );
}

#[test]
fn unknown_demand_shape_names_the_supported_set() {
    let e = parse_err("[substrate]\nside = 9\n[demand]\nshape = blob\n");
    assert_eq!((e.line, e.col), (4, 9));
    assert!(e.msg.contains("unknown demand shape \"blob\""), "{e}");
    assert!(
        e.msg.contains("point, line, square, uniform, clusters"),
        "{e}"
    );
}

#[test]
fn key_for_another_shape_is_rejected_with_the_shape_scoped_set() {
    // `a` is a real demand key — but only for squares.
    let e = parse_err("[substrate]\nside = 9\n[demand]\nshape = point\ndemand = 5\na = 2\n");
    assert_eq!((e.line, e.col), (6, 1));
    assert!(
        e.msg
            .contains("key \"a\" is not used by demand shape \"point\""),
        "{e}"
    );
    assert!(e.msg.contains("shape \"point\" uses: demand"), "{e}");
}

#[test]
fn missing_required_shape_key_is_named() {
    let e = parse_err("[substrate]\nside = 9\n[demand]\nshape = square\na = 3\n");
    assert!(
        e.msg.contains("demand shape \"square\" needs demand = <n>"),
        "{e}"
    );
}

#[test]
fn unknown_arrivals_mode_names_all_modes() {
    let e = parse_err(&format!("{MINIMAL}[arrivals]\nmode = burst\n"));
    assert_eq!((e.line, e.col), (7, 8));
    assert!(e.msg.contains("unknown arrivals mode \"burst\""), "{e}");
    assert!(
        e.msg.contains(
            "batch, sequential, uniform-rate, diurnal, flash-crowd, moving-hotspot, alternating"
        ),
        "{e}"
    );
}

#[test]
fn mode_specific_keys_are_rejected_for_other_modes() {
    let e = parse_err(&format!("{MINIMAL}[arrivals]\nmode = batch\nwaves = 3\n"));
    assert_eq!((e.line, e.col), (8, 1));
    assert!(
        e.msg
            .contains("key \"waves\" is only used by arrivals mode \"diurnal\""),
        "{e}"
    );
    let e = parse_err(&format!("{MINIMAL}[arrivals]\nat = 30\n"));
    assert!(
        e.msg
            .contains("key \"at\" is only used by arrivals mode \"flash-crowd\""),
        "{e}"
    );
}

#[test]
fn arrivals_defaults_fill_in() {
    let sc = Scenario::parse_file(&format!("{MINIMAL}[arrivals]\nmode = diurnal\n")).unwrap();
    assert_eq!(
        sc.arrivals,
        ArrivalSpec::Diurnal {
            waves: 4,
            seed: None
        }
    );
    let sc = Scenario::parse_file(&format!(
        "{MINIMAL}[arrivals]\nmode = flash-crowd\nseed = 7\n"
    ))
    .unwrap();
    assert_eq!(
        sc.arrivals,
        ArrivalSpec::FlashCrowd {
            at: 50,
            seed: Some(7)
        }
    );
}

#[test]
fn faults_must_be_positive_and_strictly_increasing() {
    let e = parse_err(&format!("{MINIMAL}[faults]\ncrash_at_rounds = 0\n"));
    assert!(e.msg.contains("must be >= 1"), "{e}");
    let e = parse_err(&format!("{MINIMAL}[faults]\ncrash_at_rounds = 5, 5\n"));
    assert!(e.msg.contains("strictly increasing"), "{e}");
    assert!(e.msg.contains("got 5 after 5"), "{e}");
    let e = parse_err(&format!("{MINIMAL}[faults]\ncrash_at_rounds = 3, x\n"));
    assert!(
        e.msg.contains("entry \"x\" is not an unsigned integer"),
        "{e}"
    );
    let sc =
        Scenario::parse_file(&format!("{MINIMAL}[faults]\ncrash_at_rounds = 3, 9, 12\n")).unwrap();
    assert_eq!(sc.faults.crash_at_rounds, vec![3, 9, 12]);
}

#[test]
fn report_baselines_capacity_and_vehicles_parse() {
    let text = format!("{MINIMAL}[report]\nbaselines = gn\ncapacity = 12\nvehicles = auto\n");
    let sc = Scenario::parse_file(&text).unwrap();
    assert_eq!(sc.report.baselines, vec![Baseline::Gn]);
    assert_eq!(sc.report.capacity, Some(12));
    assert_eq!(sc.report.vehicles, None);
    let sc = Scenario::parse_file(&format!("{MINIMAL}[report]\nbaselines = none\n")).unwrap();
    assert!(sc.report.baselines.is_empty());
    let e = parse_err(&format!("{MINIMAL}[report]\nbaselines = becker, optimal\n"));
    assert!(e.msg.contains("unknown baseline \"optimal\""), "{e}");
    assert!(e.msg.contains("becker, gn, none"), "{e}");
}
