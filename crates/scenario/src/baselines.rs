//! Literature baselines over the same demand instance the protocol runs.
//!
//! Two comparison points from the CVRP literature (see PAPERS.md):
//!
//! * **Becker tree-CVRP** — Becker, *A Tight 4/3 Approximation for
//!   Capacitated Vehicle Routing in Trees* (arXiv:1804.08791). We embed
//!   the grid instance into an L1 shortest-path tree rooted at the
//!   grid-center depot (a "spine" along the depot row with one vertical
//!   branch per demand column), compute the classic edge-coverage lower
//!   bound `LB = Σ_e 2·w(e)·⌈D(e)/Q⌉` that Becker's algorithm is measured
//!   against, and build tours by the Euler-tour Q-splitting construction:
//!   unit jobs in DFS order, split into consecutive groups of `Q`, each
//!   group toured along the minimal subtree spanning it and the depot.
//! * **Gørtz–Nagarajan makespan** — Gørtz, Nagarajan, Ravi, *Minimum
//!   Makespan Multi-vehicle Dial-a-Ride* (arXiv:1102.5450) studies the
//!   min–max objective our per-vehicle battery bound `W` echoes. The
//!   heuristic here sweeps the support by angle around the depot, packs
//!   consecutive jobs into capacity-`Q` sectors, routes each sector
//!   nearest-neighbor, and assigns sectors to `m` vehicles
//!   longest-processing-time-first; the reported lower bound is
//!   `max(2·d_max, ⌈2·Σ_x d(x)·dist(x) / (Q·m)⌉)` (the radial bound
//!   spread over the fleet).
//!
//! Both run on the exact `DemandMap` the protocol serves, so a scenario
//! summary can put paper bound, baseline cost, and protocol cost side by
//! side. All arithmetic is exact (integer L1 distances).

use cmvrp_grid::{DemandMap, GridBounds, Point};
use cmvrp_workloads::spatial;

/// The Becker tree-CVRP baseline: edge-coverage lower bound and the
/// Euler-split tour construction, both in the tree metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeckerReport {
    /// `Σ_e 2·w(e)·⌈D(e)/Q⌉` over the shortest-path tree.
    pub lower_bound: u64,
    /// Total cost of the Q-split Euler tours.
    pub tour_cost: u64,
    /// Number of tours (each serves ≤ Q unit jobs).
    pub tours: u64,
}

/// The GN-style min-makespan baseline: sweep + LPT assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakespanReport {
    /// `max(2·d_max, ⌈radial/(Q·m)⌉)` — no schedule can beat this.
    pub lower_bound: u64,
    /// The heaviest vehicle's total route cost under the heuristic.
    pub makespan: u64,
    /// Fleet size `m` the makespan was computed for.
    pub vehicles: u64,
}

/// A node of the L1 shortest-path tree: `parent` edge of weight `w`,
/// `demand` units sitting at the node itself.
struct TreeNode {
    parent: usize,
    w: u64,
    demand: u64,
}

/// Builds the spine tree: the depot row is the trunk, every demand column
/// hangs off it. Node 0 is the depot; parents always precede children.
/// Returns the nodes plus, per node, its children in DFS visit order.
fn spine_tree(bounds: &GridBounds<2>, demand: &DemandMap<2>) -> (Vec<TreeNode>, Vec<Vec<usize>>) {
    let depot = spatial::center(bounds);
    let mut xs: Vec<i64> = demand.support().map(|p| p[0]).collect();
    xs.push(depot[0]);
    xs.sort_unstable();
    xs.dedup();
    let mut nodes = vec![TreeNode {
        parent: 0,
        w: 0,
        demand: 0,
    }];
    let mut children: Vec<Vec<usize>> = vec![Vec::new()];
    let mut spine_of = std::collections::BTreeMap::new();
    spine_of.insert(depot[0], 0usize);
    let depot_at = xs.binary_search(&depot[0]).expect("depot x inserted");
    // Chain outwards from the depot so each spine node's parent is the
    // next spine node toward the center.
    let extend = |xs_slice: &[i64],
                  nodes: &mut Vec<TreeNode>,
                  children: &mut Vec<Vec<usize>>,
                  spine_of: &mut std::collections::BTreeMap<i64, usize>| {
        let mut prev_x = depot[0];
        let mut prev_id = 0usize;
        for &x in xs_slice {
            let id = nodes.len();
            nodes.push(TreeNode {
                parent: prev_id,
                w: x.abs_diff(prev_x),
                demand: 0,
            });
            children.push(Vec::new());
            children[prev_id].push(id);
            spine_of.insert(x, id);
            prev_x = x;
            prev_id = id;
        }
    };
    let right: Vec<i64> = xs[depot_at + 1..].to_vec();
    let left: Vec<i64> = xs[..depot_at].iter().rev().copied().collect();
    extend(&right, &mut nodes, &mut children, &mut spine_of);
    extend(&left, &mut nodes, &mut children, &mut spine_of);
    // Hang each demand point off its column's spine node.
    for (p, d) in demand.iter() {
        let spine = spine_of[&p[0]];
        let drop = p[1].abs_diff(depot[1]);
        if drop == 0 {
            nodes[spine].demand += d;
        } else {
            let id = nodes.len();
            nodes.push(TreeNode {
                parent: spine,
                w: drop,
                demand: d,
            });
            children.push(Vec::new());
            children[spine].push(id);
        }
    }
    (nodes, children)
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Runs the Becker tree-CVRP baseline with per-tour capacity `capacity`.
pub fn becker(bounds: &GridBounds<2>, demand: &DemandMap<2>, capacity: u64) -> BeckerReport {
    let capacity = capacity.max(1);
    let (nodes, children) = spine_tree(bounds, demand);
    // Subtree demands: children always have larger indices than parents.
    let mut subtree: Vec<u64> = nodes.iter().map(|n| n.demand).collect();
    for id in (1..nodes.len()).rev() {
        subtree[nodes[id].parent] += subtree[id];
    }
    let lower_bound: u64 = (1..nodes.len())
        .filter(|&id| subtree[id] > 0)
        .map(|id| 2 * nodes[id].w * ceil_div(subtree[id], capacity))
        .sum();

    // Euler split: unit jobs in DFS order, groups of Q, each group toured
    // along the minimal subtree spanning group ∪ depot.
    let mut dfs_jobs: Vec<usize> = Vec::new();
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        dfs_jobs.extend(std::iter::repeat_n(id, nodes[id].demand as usize));
        for &c in children[id].iter().rev() {
            stack.push(c);
        }
    }
    let mut tour_cost = 0u64;
    let mut tours = 0u64;
    let mut marked = vec![0u32; nodes.len()];
    for (g, group) in dfs_jobs.chunks(capacity as usize).enumerate() {
        let stamp = g as u32 + 1;
        tours += 1;
        marked[0] = stamp;
        for &leaf in group {
            let mut at = leaf;
            while marked[at] != stamp {
                marked[at] = stamp;
                tour_cost += 2 * nodes[at].w;
                at = nodes[at].parent;
            }
        }
    }
    BeckerReport {
        lower_bound,
        tour_cost,
        tours,
    }
}

fn l1(a: Point<2>, b: Point<2>) -> u64 {
    a[0].abs_diff(b[0]) + a[1].abs_diff(b[1])
}

/// Sorts support points by angle around the depot: upper half-plane first
/// (including the positive x-axis), then lower, each swept
/// counter-clockwise by exact cross products — no floating point.
fn sweep_order(depot: Point<2>, support: &mut [Point<2>]) {
    let half = |p: &Point<2>| -> u8 {
        let (dx, dy) = (p[0] - depot[0], p[1] - depot[1]);
        if dy > 0 || (dy == 0 && dx >= 0) {
            0
        } else {
            1
        }
    };
    support.sort_by(|a, b| {
        half(a).cmp(&half(b)).then_with(|| {
            let (ax, ay) = (a[0] - depot[0], a[1] - depot[1]);
            let (bx, by) = (b[0] - depot[0], b[1] - depot[1]);
            // cross > 0 ⇒ a before b (counter-clockwise within the half).
            (bx * ay - ax * by).cmp(&0).then_with(|| a.cmp(b))
        })
    });
}

/// Runs the GN-style makespan heuristic with `vehicles` vehicles of
/// capacity `capacity` based at the grid-center depot.
pub fn gn_makespan(
    bounds: &GridBounds<2>,
    demand: &DemandMap<2>,
    capacity: u64,
    vehicles: u64,
) -> MakespanReport {
    let capacity = capacity.max(1);
    let vehicles = vehicles.max(1);
    let depot = spatial::center(bounds);
    if demand.total() == 0 {
        return MakespanReport {
            lower_bound: 0,
            makespan: 0,
            vehicles,
        };
    }
    let d_max = demand.support().map(|p| l1(depot, p)).max().unwrap_or(0);
    let radial: u64 = demand.iter().map(|(p, d)| 2 * d * l1(depot, p)).sum();
    let lower_bound = (2 * d_max).max(ceil_div(radial, capacity * vehicles));

    let mut support: Vec<Point<2>> = demand.support().collect();
    sweep_order(depot, &mut support);
    // Pack the sweep into capacity-full sectors (a point's units may
    // straddle two sectors).
    let mut sectors: Vec<Vec<Point<2>>> = Vec::new();
    let mut current: Vec<Point<2>> = Vec::new();
    let mut load = 0u64;
    for p in support {
        let mut left = demand.get(p);
        while left > 0 {
            let take = left.min(capacity - load);
            if take > 0 && current.last().is_none_or(|&q| q != p) {
                current.push(p);
            }
            load += take;
            left -= take;
            if load == capacity {
                sectors.push(std::mem::take(&mut current));
                load = 0;
            }
        }
    }
    if !current.is_empty() {
        sectors.push(current);
    }
    // Nearest-neighbor route per sector, depot → … → depot.
    let mut costs: Vec<u64> = sectors
        .iter()
        .map(|sector| {
            let mut todo = sector.clone();
            let mut at = depot;
            let mut cost = 0u64;
            while !todo.is_empty() {
                let (i, _) = todo
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| (l1(at, **p), **p))
                    .expect("sector non-empty");
                let next = todo.swap_remove(i);
                cost += l1(at, next);
                at = next;
            }
            cost + l1(at, depot)
        })
        .collect();
    // LPT: heaviest sector first onto the least-loaded vehicle.
    costs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
    let mut loads = vec![0u64; vehicles as usize];
    for c in costs {
        let min = loads.iter_mut().min().expect("at least one vehicle");
        *min += c;
    }
    MakespanReport {
        lower_bound,
        makespan: loads.into_iter().max().unwrap_or(0),
        vehicles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmvrp_grid::pt2;

    fn point_map(side: u64, d: u64) -> (GridBounds<2>, DemandMap<2>) {
        let b = GridBounds::square(side);
        let m = spatial::point(&b, d);
        (b, m)
    }

    #[test]
    fn becker_single_point_is_exact() {
        // All demand at distance 0 from the depot: free in the tree metric.
        let (b, m) = point_map(9, 40);
        let r = becker(&b, &m, 5);
        assert_eq!(r.lower_bound, 0);
        assert_eq!(r.tour_cost, 0);
        assert_eq!(r.tours, 8);
        // One off-center point at L1 distance 4, demand 6, Q=2: every pair
        // of jobs costs a 2·4 round trip, and the bound is tight.
        let b = GridBounds::square(9);
        let mut m = DemandMap::new();
        m.add(pt2(4 + 3, 4 + 1), 6);
        let r = becker(&b, &m, 2);
        assert_eq!(r.lower_bound, 3 * 2 * 4);
        assert_eq!(r.tour_cost, r.lower_bound);
        assert_eq!(r.tours, 3);
    }

    #[test]
    fn becker_cost_dominates_lower_bound() {
        let b = GridBounds::square(15);
        let m = spatial::uniform_random(&b, 300, 7);
        for q in [1, 3, 10, 50] {
            let r = becker(&b, &m, q);
            assert!(r.tour_cost >= r.lower_bound, "Q={q}: {r:?}");
            assert_eq!(r.tours, 300u64.div_ceil(q));
            // The Euler split is a 2-ish approximation in practice; guard
            // against a pathological regression.
            assert!(r.tour_cost <= 4 * r.lower_bound.max(1) * 2, "Q={q}: {r:?}");
        }
    }

    #[test]
    fn becker_line_matches_hand_count() {
        // Line of demand 1 on a 5-grid (row y=2), Q large: one tour walks
        // the whole spine: 2·(2+2) = 8.
        let b = GridBounds::square(5);
        let m = spatial::line(&b, 1);
        let r = becker(&b, &m, 100);
        assert_eq!(r.lower_bound, 8);
        assert_eq!(r.tour_cost, 8);
        assert_eq!(r.tours, 1);
    }

    #[test]
    fn gn_makespan_dominates_bound_and_is_deterministic() {
        let b = GridBounds::square(13);
        let m = spatial::zipf_clusters(&b, 3, 200, 5);
        let r = gn_makespan(&b, &m, 10, 4);
        let again = gn_makespan(&b, &m, 10, 4);
        assert_eq!(r, again);
        assert!(r.makespan >= r.lower_bound, "{r:?}");
        assert_eq!(r.vehicles, 4);
        // More vehicles can only help the heuristic's makespan bound.
        let wide = gn_makespan(&b, &m, 10, 16);
        assert!(wide.lower_bound <= r.lower_bound);
    }

    #[test]
    fn gn_single_far_point() {
        // One point at distance 6, 4 jobs, Q=2, m=2: two sectors of cost
        // 12 each on two vehicles — makespan 12 = the 2·d_max bound.
        let b = GridBounds::square(13);
        let mut m = DemandMap::new();
        m.add(pt2(6 + 6, 6), 4);
        let r = gn_makespan(&b, &m, 2, 2);
        assert_eq!(r.lower_bound, 12);
        assert_eq!(r.makespan, 12);
    }

    #[test]
    fn empty_demand_is_all_zeroes() {
        let b = GridBounds::square(7);
        let m = DemandMap::new();
        let r = becker(&b, &m, 3);
        assert_eq!((r.lower_bound, r.tour_cost, r.tours), (0, 0, 0));
        let g = gn_makespan(&b, &m, 3, 2);
        assert_eq!((g.lower_bound, g.makespan), (0, 0));
    }
}
