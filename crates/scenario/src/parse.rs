//! The scenario file parser: a hand-rolled, zero-dependency reader for the
//! sectioned `key = value` grammar described in the crate docs.
//!
//! Errors carry 1-based line *and* column positions scoped to the
//! offending token, in the house style of the campaign INI parser
//! (line-scoped `spec line N:` errors) and the trace query language
//! (column-scoped `col N:` errors): every rejection names what was seen
//! and the supported alternatives.

use crate::{ArrivalSpec, Baseline, FaultScript, ReportSpec, Scenario};
use cmvrp_workloads::WorkloadConfig;
use std::collections::BTreeMap;

/// A scenario parse error, scoped to the line and column of the offending
/// token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// What went wrong, naming the supported alternatives.
    pub msg: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario line {}, col {}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, col: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        col,
        msg: msg.into(),
    }
}

const SECTIONS: &[&str] = &["substrate", "demand", "arrivals", "faults", "report"];

/// A raw `key = value` entry with source positions: `col` points at the
/// key, `vcol` at the first character of the value.
#[derive(Debug, Clone)]
struct Entry {
    line: usize,
    col: usize,
    vcol: usize,
    val: String,
}

type Section = BTreeMap<String, Entry>;

/// Parses the full text of a scenario file.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut sections: BTreeMap<String, (usize, Section)> = BTreeMap::new();
    let mut top: Section = BTreeMap::new();
    let mut current: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(cut) => &raw[..cut],
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let start = line.len() - line.trim_start().len() + 1; // 1-based col
        if let Some(inner) = trimmed.strip_prefix('[') {
            let name = inner.strip_suffix(']').ok_or_else(|| {
                err(
                    lineno,
                    start,
                    format!("section header {trimmed:?} is missing its `]`"),
                )
            })?;
            if !SECTIONS.contains(&name) {
                return Err(err(
                    lineno,
                    start + 1,
                    format!(
                        "unknown section [{name}]; supported sections: {}",
                        SECTIONS
                            .iter()
                            .map(|s| format!("[{s}]"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
            if let Some((first, _)) = sections.get(name) {
                return Err(err(
                    lineno,
                    start + 1,
                    format!("duplicate section [{name}] (first defined on line {first})"),
                ));
            }
            sections.insert(name.to_string(), (lineno, Section::new()));
            current = Some(name.to_string());
            continue;
        }
        let eq = line.find('=').ok_or_else(|| {
            err(
                lineno,
                start,
                format!("expected `key = value` or `[section]`, got {trimmed:?}"),
            )
        })?;
        let key = line[..eq].trim();
        if key.is_empty() {
            return Err(err(lineno, start, "empty key before `=`"));
        }
        let key_col = line.find(key).map_or(start, |i| i + 1);
        let val_raw = line[eq + 1..].trim();
        if val_raw.is_empty() {
            return Err(err(
                lineno,
                eq + 2,
                format!("key {key:?} has an empty value"),
            ));
        }
        let vcol = eq + 1 + line[eq + 1..].find(val_raw).unwrap_or(0) + 1;
        let val = unquote(val_raw);
        let entry = Entry {
            line: lineno,
            col: key_col,
            vcol,
            val,
        };
        let dest = match &current {
            None => &mut top,
            Some(name) => &mut sections.get_mut(name).expect("current section exists").1,
        };
        if let Some(prev) = dest.get(key) {
            return Err(err(
                lineno,
                key_col,
                format!("duplicate key {key:?} (first set on line {})", prev.line),
            ));
        }
        dest.insert(key.to_string(), entry);
    }

    compile(top, sections)
}

fn unquote(v: &str) -> String {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        v[1..v.len() - 1].to_string()
    } else {
        v.to_string()
    }
}

/// Rejects keys outside `allowed`, column-scoped to the stray key.
fn no_extras(section: &str, entries: &Section, allowed: &[&str]) -> Result<(), ScenarioError> {
    for (key, e) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(err(
                e.line,
                e.col,
                format!(
                    "unknown key {key:?} in [{section}]; supported keys: {}",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn parse_u64(section: &str, key: &str, e: &Entry) -> Result<u64, ScenarioError> {
    e.val.parse().map_err(|_| {
        err(
            e.line,
            e.vcol,
            format!("[{section}] {key} = {:?} is not an unsigned integer", e.val),
        )
    })
}

fn compile(
    top: Section,
    mut sections: BTreeMap<String, (usize, Section)>,
) -> Result<Scenario, ScenarioError> {
    no_extras("scenario", &top, &["name"])?;
    let name = top.get("name").map(|e| e.val.clone());

    let (sub_line, substrate) = sections.remove("substrate").ok_or_else(|| {
        err(
            1,
            1,
            "missing [substrate] section; a scenario needs [substrate] side = <n>",
        )
    })?;
    no_extras("substrate", &substrate, &["kind", "side"])?;
    if let Some(kind) = substrate.get("kind") {
        if kind.val != "grid" {
            return Err(err(
                kind.line,
                kind.vcol,
                format!(
                    "unknown substrate kind {:?}; supported kinds: grid",
                    kind.val
                ),
            ));
        }
    }
    let side = match substrate.get("side") {
        Some(e) => parse_u64("substrate", "side", e)?,
        None => return Err(err(sub_line, 1, "[substrate] needs side = <grid side>")),
    };

    let (dem_line, demand_sec) = sections.remove("demand").ok_or_else(|| {
        err(
            1,
            1,
            "missing [demand] section; a scenario needs [demand] shape = <shape>",
        )
    })?;
    let demand = compile_demand(dem_line, &demand_sec, side)?;

    let arrivals = match sections.remove("arrivals") {
        Some((_, sec)) => compile_arrivals(&sec)?,
        None => ArrivalSpec::default(),
    };

    let faults = match sections.remove("faults") {
        Some((_, sec)) => compile_faults(&sec)?,
        None => FaultScript::default(),
    };

    let report = match sections.remove("report") {
        Some((_, sec)) => compile_report(&sec)?,
        None => ReportSpec::default(),
    };

    Ok(Scenario {
        name,
        demand,
        arrivals,
        faults,
        report,
    })
}

fn compile_demand(
    dem_line: usize,
    sec: &Section,
    side: u64,
) -> Result<WorkloadConfig, ScenarioError> {
    no_extras(
        "demand",
        sec,
        &["shape", "demand", "a", "jobs", "k", "seed"],
    )?;
    let shape = sec.get("shape").ok_or_else(|| {
        err(
            dem_line,
            1,
            "[demand] needs shape = point | line | square | uniform | clusters",
        )
    })?;
    // Which keys each shape consumes; a key valid for *some* shape but not
    // this one is rejected with the shape-scoped set.
    let uses: &[&str] = match shape.val.as_str() {
        "point" | "line" => &["demand"],
        "square" => &["a", "demand"],
        "uniform" => &["jobs", "seed"],
        "clusters" => &["k", "jobs", "seed"],
        other => {
            return Err(err(
                shape.line,
                shape.vcol,
                format!(
                    "unknown demand shape {other:?}; supported shapes: \
                     point, line, square, uniform, clusters"
                ),
            ))
        }
    };
    for (key, e) in sec {
        if key != "shape" && !uses.contains(&key.as_str()) {
            return Err(err(
                e.line,
                e.col,
                format!(
                    "key {key:?} is not used by demand shape {:?}; shape {:?} uses: {}",
                    shape.val,
                    shape.val,
                    uses.join(", ")
                ),
            ));
        }
    }
    let get = |key: &str| -> Result<Option<u64>, ScenarioError> {
        sec.get(key)
            .map(|e| parse_u64("demand", key, e))
            .transpose()
    };
    let need = |key: &str| -> Result<u64, ScenarioError> {
        get(key)?.ok_or_else(|| {
            err(
                shape.line,
                shape.col,
                format!("demand shape {:?} needs {key} = <n>", shape.val),
            )
        })
    };
    Ok(match shape.val.as_str() {
        "point" => WorkloadConfig::Point {
            grid: side,
            demand: need("demand")?,
        },
        "line" => WorkloadConfig::Line {
            grid: side,
            demand: need("demand")?,
        },
        "square" => WorkloadConfig::Square {
            grid: side,
            a: need("a")?,
            demand: need("demand")?,
        },
        "uniform" => WorkloadConfig::Uniform {
            grid: side,
            jobs: need("jobs")?,
            seed: get("seed")?.unwrap_or(0),
        },
        "clusters" => WorkloadConfig::Clusters {
            grid: side,
            clusters: need("k")? as usize,
            jobs: need("jobs")?,
            seed: get("seed")?.unwrap_or(0),
        },
        _ => unreachable!("shape validated above"),
    })
}

const MODES: &str =
    "batch, sequential, uniform-rate, diurnal, flash-crowd, moving-hotspot, alternating";

fn compile_arrivals(sec: &Section) -> Result<ArrivalSpec, ScenarioError> {
    no_extras("arrivals", sec, &["mode", "seed", "waves", "at"])?;
    let seed = sec
        .get("seed")
        .map(|e| parse_u64("arrivals", "seed", e))
        .transpose()?;
    let mode = sec.get("mode").map_or("batch", |e| e.val.as_str());
    // Mode-specific keys are rejected elsewhere with a column-scoped error.
    let reject_unless = |key: &str, wanted: &str| -> Result<(), ScenarioError> {
        match sec.get(key) {
            Some(e) if mode != wanted => Err(err(
                e.line,
                e.col,
                format!("key {key:?} is only used by arrivals mode {wanted:?} (mode is {mode:?})"),
            )),
            _ => Ok(()),
        }
    };
    reject_unless("waves", "diurnal")?;
    reject_unless("at", "flash-crowd")?;
    Ok(match mode {
        "batch" => ArrivalSpec::Batch { seed },
        "sequential" => ArrivalSpec::Sequential,
        "uniform-rate" => ArrivalSpec::UniformRate { seed },
        "diurnal" => ArrivalSpec::Diurnal {
            waves: sec
                .get("waves")
                .map(|e| parse_u64("arrivals", "waves", e))
                .transpose()?
                .unwrap_or(4),
            seed,
        },
        "flash-crowd" => ArrivalSpec::FlashCrowd {
            at: sec
                .get("at")
                .map(|e| parse_u64("arrivals", "at", e))
                .transpose()?
                .unwrap_or(50),
            seed,
        },
        "moving-hotspot" => ArrivalSpec::MovingHotspot { seed },
        "alternating" => ArrivalSpec::Alternating { seed },
        other => {
            let e = sec.get("mode").expect("mode present when not defaulted");
            return Err(err(
                e.line,
                e.vcol,
                format!("unknown arrivals mode {other:?}; supported modes: {MODES}"),
            ));
        }
    })
}

fn compile_faults(sec: &Section) -> Result<FaultScript, ScenarioError> {
    no_extras("faults", sec, &["crash_at_rounds"])?;
    let mut rounds = Vec::new();
    if let Some(e) = sec.get("crash_at_rounds") {
        for part in e.val.split(',') {
            let part = part.trim();
            let r: u64 = part.parse().map_err(|_| {
                err(
                    e.line,
                    e.vcol,
                    format!("crash_at_rounds entry {part:?} is not an unsigned integer"),
                )
            })?;
            if r == 0 {
                return Err(err(e.line, e.vcol, "crash_at_rounds entries must be >= 1"));
            }
            if rounds.last().is_some_and(|&last| r <= last) {
                return Err(err(
                    e.line,
                    e.vcol,
                    format!(
                        "crash_at_rounds must be strictly increasing (got {} after {})",
                        r,
                        rounds.last().unwrap()
                    ),
                ));
            }
            rounds.push(r);
        }
    }
    Ok(FaultScript {
        crash_at_rounds: rounds,
    })
}

fn compile_report(sec: &Section) -> Result<ReportSpec, ScenarioError> {
    no_extras("report", sec, &["baselines", "capacity", "vehicles"])?;
    let baselines = match sec.get("baselines") {
        None => ReportSpec::default().baselines,
        Some(e) => {
            let mut out = Vec::new();
            for part in e.val.split(',') {
                match part.trim() {
                    "becker" => out.push(Baseline::Becker),
                    "gn" => out.push(Baseline::Gn),
                    "none" => {}
                    other => {
                        return Err(err(
                            e.line,
                            e.vcol,
                            format!(
                                "unknown baseline {other:?}; supported baselines: becker, gn, none"
                            ),
                        ))
                    }
                }
            }
            out
        }
    };
    let auto_or = |key: &str| -> Result<Option<u64>, ScenarioError> {
        match sec.get(key) {
            None => Ok(None),
            Some(e) if e.val == "auto" => Ok(None),
            Some(e) => parse_u64("report", key, e).map(Some),
        }
    };
    Ok(ReportSpec {
        baselines,
        capacity: auto_or("capacity")?,
        vehicles: auto_or("vehicles")?,
    })
}
