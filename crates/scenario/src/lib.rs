#![warn(missing_docs)]

//! # cmvrp-scenario — the declarative workload surface
//!
//! One scenario representation for every frontend: the CLI (`cmvrp
//! simulate`, `cmvrp scenario run`), campaign specs, and the serve wire
//! `open` op all construct work through [`Scenario`]. A scenario is either
//! an inline `shape:key=value,...` spec (the historical `WorkloadConfig`
//! syntax, now a thin constructor layer under this type) or a sectioned
//! scenario *file* referenced as `@path.toml`:
//!
//! ```toml
//! name = "earthquake-flash"
//!
//! [substrate]
//! kind = grid            # the Z^2 substrate of the thesis
//! side = 12
//!
//! [demand]
//! shape = point          # point | line | square | uniform | clusters
//! demand = 250
//!
//! [arrivals]
//! mode = flash-crowd     # batch | sequential | uniform-rate | diurnal
//! at = 40                #   | flash-crowd | moving-hotspot | alternating
//!
//! [faults]
//! crash_at_rounds = 6, 14   # scripted crash+recover (scenario run only)
//!
//! [report]
//! baselines = becker, gn
//! ```
//!
//! Parsing is hand-rolled and hermetic; errors are line/column-scoped and
//! name the supported alternatives (see [`parse::ScenarioError`]).
//! [`Scenario::generate`] deterministically materializes `(bounds, demand,
//! jobs)`; the default `[arrivals] mode = batch` reproduces byte-for-byte
//! the job sequence the flag-built path has always used, so a scenario
//! file run is trace-identical to its equivalent flag run.
//!
//! The [`baselines`] module implements the two literature comparison
//! points (Becker tree-CVRP, Gørtz–Nagarajan-style makespan) that `cmvrp
//! scenario run` reports next to the paper bound and the protocol's cost.

use cmvrp_engine::{EngineError, ExecConfig, Execution, Session};
use cmvrp_grid::{DemandMap, GridBounds};
use cmvrp_obs::Sink;
use cmvrp_online::OnlineConfig;
use cmvrp_workloads::arrivals::{self, JobSequence, Ordering};
use cmvrp_workloads::spatial::ShapeError;
use cmvrp_workloads::WorkloadConfig;

pub mod baselines;
pub mod parse;

pub use parse::ScenarioError;

/// How the jobs of a demand map are released over time. `seed = None`
/// defers to the run seed at [`Scenario::generate`] time, which is what
/// keeps a default scenario byte-identical to the flag-built path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// One shuffled batch — the historical default of every frontend.
    Batch {
        /// Shuffle seed; `None` uses the run seed.
        seed: Option<u64>,
    },
    /// Positions release all their jobs consecutively, in point order.
    Sequential,
    /// A steady trickle: the support takes seeded turns, one job each.
    UniformRate {
        /// Turn-order seed; `None` uses the run seed.
        seed: Option<u64>,
    },
    /// Demand sweeps the field in vertical bands, like daylight.
    Diurnal {
        /// Number of bands.
        waves: u64,
        /// Within-wave shuffle seed; `None` uses the run seed.
        seed: Option<u64>,
    },
    /// A shuffled background with the heaviest point's jobs as one burst.
    FlashCrowd {
        /// Where the burst lands, as a percentage of the background.
        at: u64,
        /// Background shuffle seed; `None` uses the run seed.
        seed: Option<u64>,
    },
    /// A hotspot sweeping the field along the x axis.
    MovingHotspot {
        /// Jitter seed; `None` uses the run seed.
        seed: Option<u64>,
    },
    /// The §4.2 adversary: the two heaviest points alternate.
    Alternating {
        /// Leftover-shuffle seed; `None` uses the run seed.
        seed: Option<u64>,
    },
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec::Batch { seed: None }
    }
}

impl ArrivalSpec {
    /// Materializes the arrival order for `demand`; `default_seed` fills
    /// in for any seed the scenario left unspecified.
    pub fn sequence(&self, demand: &DemandMap<2>, default_seed: u64) -> JobSequence<2> {
        let seed = |s: Option<u64>| s.unwrap_or(default_seed);
        match *self {
            ArrivalSpec::Batch { seed: s } => {
                arrivals::from_demand(demand, Ordering::Shuffled, seed(s))
            }
            ArrivalSpec::Sequential => arrivals::from_demand(demand, Ordering::Sequential, 0),
            ArrivalSpec::UniformRate { seed: s } => arrivals::uniform_rate(demand, seed(s)),
            ArrivalSpec::Diurnal { waves, seed: s } => arrivals::diurnal(demand, waves, seed(s)),
            ArrivalSpec::FlashCrowd { at, seed: s } => arrivals::flash_crowd(demand, at, seed(s)),
            ArrivalSpec::MovingHotspot { seed: s } => arrivals::moving_hotspot(demand, seed(s)),
            ArrivalSpec::Alternating { seed: s } => {
                arrivals::alternating_from_demand(demand, seed(s))
            }
        }
    }

    /// A short label for tables.
    pub fn label(&self) -> String {
        match *self {
            ArrivalSpec::Batch { .. } => "batch".into(),
            ArrivalSpec::Sequential => "sequential".into(),
            ArrivalSpec::UniformRate { .. } => "uniform-rate".into(),
            ArrivalSpec::Diurnal { waves, .. } => format!("diurnal waves={waves}"),
            ArrivalSpec::FlashCrowd { at, .. } => format!("flash-crowd at={at}"),
            ArrivalSpec::MovingHotspot { .. } => "moving-hotspot".into(),
            ArrivalSpec::Alternating { .. } => "alternating".into(),
        }
    }
}

/// Scripted faults: rounds at which `cmvrp scenario run` crashes the
/// session and resumes it from its own snapshot, exercising the
/// checkpoint/resume seams. Empty means a fault-free run (and only
/// fault-free scenarios are accepted by `simulate` and the wire `open`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultScript {
    /// Strictly increasing absolute round numbers.
    pub crash_at_rounds: Vec<u64>,
}

impl FaultScript {
    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.crash_at_rounds.is_empty()
    }
}

/// A literature baseline to run in the summary report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Becker tree-CVRP (arXiv:1804.08791): edge lower bound + Euler split.
    Becker,
    /// Gørtz–Nagarajan-style min-makespan heuristic (arXiv:1102.5450).
    Gn,
}

/// What `cmvrp scenario run` reports alongside the protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSpec {
    /// Baselines to run, in report order.
    pub baselines: Vec<Baseline>,
    /// Per-tour/vehicle capacity `Q` for the baselines; `None` (`auto`)
    /// uses the capacity the protocol run provisioned.
    pub capacity: Option<u64>,
    /// Fleet size `m` for the makespan baseline; `None` (`auto`) uses
    /// `⌈jobs/Q⌉`.
    pub vehicles: Option<u64>,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            baselines: vec![Baseline::Becker, Baseline::Gn],
            capacity: None,
            vehicles: None,
        }
    }
}

/// A fully-described workload: spatial demand, arrival order, fault
/// script, and report configuration — the single construction path every
/// frontend funnels through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Optional scenario name (top-level `name = "..."`).
    pub name: Option<String>,
    /// The spatial demand shape (carries the substrate's grid side).
    pub demand: WorkloadConfig,
    /// How the demand's jobs arrive over time.
    pub arrivals: ArrivalSpec,
    /// Scripted crash/recover rounds (`scenario run` only).
    pub faults: FaultScript,
    /// Which baselines the summary report runs.
    pub report: ReportSpec,
}

impl Scenario {
    /// Wraps a bare [`WorkloadConfig`] in the default scenario: batch
    /// arrivals seeded by the run, no faults, the full baseline report.
    /// This is the compatibility layer every inline `shape:key=value`
    /// spec goes through.
    pub fn from_workload(demand: WorkloadConfig) -> Self {
        Scenario {
            name: None,
            demand,
            arrivals: ArrivalSpec::default(),
            faults: FaultScript::default(),
            report: ReportSpec::default(),
        }
    }

    /// Parses a workload spec: `@path.toml` loads and parses a scenario
    /// file (errors are prefixed with the path), anything else is the
    /// inline `shape:key=value,...` syntax. This is the shared entry
    /// point of `cmvrp simulate`, campaign `workload =` lines, and the
    /// wire `open` op, so all three reject bad input identically.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        if let Some(path) = spec.strip_prefix('@') {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario file {path:?}: {e}"))?;
            parse::parse(&text).map_err(|e| format!("{path}: {e}"))
        } else {
            spec.parse::<WorkloadConfig>().map(Scenario::from_workload)
        }
    }

    /// Parses the text of a scenario file (without the `@` indirection).
    pub fn parse_file(text: &str) -> Result<Self, ScenarioError> {
        parse::parse(text)
    }

    /// The grid side of the substrate.
    pub fn side(&self) -> u64 {
        self.demand.grid()
    }

    /// A short label: the scenario's name, or the demand's label.
    pub fn label(&self) -> String {
        self.name.clone().unwrap_or_else(|| self.demand.label())
    }

    /// Materializes the scenario: bounds, demand map, and the arrival
    /// sequence. `default_seed` (usually `OnlineConfig::seed`) fills in
    /// unspecified arrival seeds — with default batch arrivals the result
    /// is exactly the flag-built path's `(generate, shuffle(seed))`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the demand shape does not fit the
    /// substrate.
    pub fn generate(
        &self,
        default_seed: u64,
    ) -> Result<(GridBounds<2>, DemandMap<2>, JobSequence<2>), ShapeError> {
        let (bounds, demand) = self.demand.generate()?;
        let jobs = self.arrivals.sequence(&demand, default_seed);
        Ok((bounds, demand, jobs))
    }

    /// Builds a preloaded [`Session`] for this scenario — the scenario
    /// face of [`ExecConfig::build`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the shape is malformed or the engine
    /// rejects the configuration.
    pub fn build(&self, exec: &ExecConfig, online: OnlineConfig) -> Result<Session<2>, RunError> {
        let (bounds, _, jobs) = self.generate(online.seed)?;
        Ok(exec.build(bounds, &jobs, online)?)
    }

    /// Builds a live (empty) [`Session`] on this scenario's substrate —
    /// the scenario face of [`ExecConfig::build_live`]; arrivals are
    /// injected by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the shape is malformed or the engine
    /// rejects the configuration.
    pub fn build_live(
        &self,
        exec: &ExecConfig,
        online: OnlineConfig,
    ) -> Result<Session<2>, RunError> {
        let (bounds, _, _) = self.generate(online.seed)?;
        Ok(exec.build_live(bounds, &JobSequence::default(), online)?)
    }

    /// One-shot execution of the scenario — the scenario face of
    /// [`ExecConfig::execute`]. The fault script is ignored here; `cmvrp
    /// scenario run` owns crash/recover orchestration.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the shape is malformed or the engine
    /// rejects the configuration.
    pub fn execute(
        &self,
        exec: &ExecConfig,
        online: OnlineConfig,
        sink: &mut dyn Sink,
    ) -> Result<Execution, RunError> {
        let (bounds, _, jobs) = self.generate(online.seed)?;
        Ok(exec.execute(bounds, &jobs, online, sink)?)
    }
}

/// Parses via [`Scenario::from_spec`] (including `@file` indirection).
impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, String> {
        Scenario::from_spec(spec)
    }
}

/// Why a scenario could not run: the shape did not fit, or the engine
/// rejected the execution configuration.
#[derive(Debug)]
pub enum RunError {
    /// The demand shape does not fit its substrate.
    Shape(ShapeError),
    /// The engine rejected the configuration.
    Engine(EngineError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Shape(e) => write!(f, "{e}"),
            RunError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ShapeError> for RunError {
    fn from(e: ShapeError) -> Self {
        RunError::Shape(e)
    }
}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        RunError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_spec_defaults_match_the_flag_path() {
        let sc = Scenario::from_spec("point:grid=9,demand=30").unwrap();
        assert_eq!(sc.side(), 9);
        assert_eq!(sc.label(), "point d=30");
        assert!(sc.faults.is_empty());
        let (bounds, demand, jobs) = sc.generate(7).unwrap();
        let (b2, d2) = sc.demand.generate().unwrap();
        assert_eq!(bounds, b2);
        assert_eq!(demand, d2);
        assert_eq!(jobs, arrivals::from_demand(&d2, Ordering::Shuffled, 7));
    }

    #[test]
    fn inline_spec_rejections_flow_through() {
        let err = Scenario::from_spec("blob:grid=4").unwrap_err();
        assert!(err.contains("supported shapes"), "{err}");
        let err = Scenario::from_spec("point:grid=9,demand=3,x=1").unwrap_err();
        assert!(err.contains("supported keys"), "{err}");
        let err = Scenario::from_spec("@/no/such/scenario.toml").unwrap_err();
        assert!(err.contains("cannot read scenario file"), "{err}");
    }

    #[test]
    fn file_parse_produces_the_same_instance() {
        let text = "name = \"t\"\n[substrate]\nside = 9\n[demand]\nshape = point\ndemand = 30\n";
        let sc = Scenario::parse_file(text).unwrap();
        assert_eq!(sc.demand, "point:grid=9,demand=30".parse().unwrap());
        assert_eq!(sc.label(), "t");
        let flag = Scenario::from_spec("point:grid=9,demand=30").unwrap();
        assert_eq!(sc.generate(3).unwrap(), flag.generate(3).unwrap());
    }

    #[test]
    fn arrival_specs_are_deterministic_and_conserve_demand() {
        let (_, demand) = "clusters:grid=10,k=2,jobs=60,seed=3"
            .parse::<WorkloadConfig>()
            .unwrap()
            .generate()
            .unwrap();
        let specs = [
            ArrivalSpec::Batch { seed: None },
            ArrivalSpec::Sequential,
            ArrivalSpec::UniformRate { seed: Some(4) },
            ArrivalSpec::Diurnal {
                waves: 3,
                seed: None,
            },
            ArrivalSpec::FlashCrowd { at: 30, seed: None },
            ArrivalSpec::MovingHotspot { seed: None },
            ArrivalSpec::Alternating { seed: None },
        ];
        for spec in specs {
            let a = spec.sequence(&demand, 11);
            let b = spec.sequence(&demand, 11);
            assert_eq!(a, b, "{}", spec.label());
            assert_eq!(a.to_demand(), demand, "{}", spec.label());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn scenario_execute_runs_dense() {
        let sc = Scenario::from_spec("point:grid=7,demand=20").unwrap();
        let mut sink = cmvrp_obs::NullSink;
        let exec = ExecConfig::new();
        let out = sc
            .execute(&exec, OnlineConfig::default(), &mut sink)
            .unwrap();
        assert_eq!(out.report.served, 20);
        let bad = Scenario::from_spec("square:grid=4,a=9,demand=1").unwrap();
        let err = bad
            .execute(&exec, OnlineConfig::default(), &mut sink)
            .unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }
}
