#![warn(missing_docs)]

//! The decentralized on-line CMVRP strategy of Chapter 3.
//!
//! Jobs arrive one at a time at grid vertices; no vehicle knows the demand
//! in advance. The strategy (§3.2):
//!
//! 1. Partition the grid into `⌈ω_c⌉`-cubes and chessboard-pair the vertices
//!    of each cube (adjacent black–white pairs, at most one singleton).
//! 2. One vehicle per pair starts **active** and serves the jobs arriving at
//!    either vertex of its pair (walks of length ≤ 1); the others are
//!    **idle**.
//! 3. When an active vehicle can no longer serve it becomes **done** and
//!    runs Phase I — the Dijkstra–Scholten diffusing computation of
//!    Algorithm 2 — to locate an idle vehicle in its cube; Phase II walks a
//!    `move` order down the recorded `child` path, and the idle vehicle
//!    relocates and takes over the pair.
//! 4. (§3.2.5) Optionally, active vehicles gossip periodic `existing`
//!    heartbeats and monitor a designated peer, so that a *silent* done
//!    vehicle (scenario 2) or a crashed vehicle (scenario 3) is detected
//!    and replaced by its monitor.
//!
//! Theorem 1.4.2 (via Lemma 3.3.1) provisions every vehicle with
//! `W = (4·3^ℓ + ℓ)·ω_c` energy and proves all jobs get served; the
//! simulator in [`sim`] reproduces exactly that accounting (unit cost per
//! step and per job, free communication) and reports the maximum energy any
//! vehicle actually drew, which experiment E7 compares against `ω_c`.
//!
//! # Faithfulness notes
//!
//! * The thesis' strategy is parameterized by `ω_c`, a quantity of the full
//!   demand; the simulator likewise derives the cube side from the job
//!   sequence it is about to replay. This mirrors the analysis (which
//!   provisions capacity relative to `ω_c`), not an impossible prescience —
//!   the *protocol itself* uses no future information.
//! * Neighbor discovery (who is within communication distance) is a
//!   physical-layer service: the driver recomputes neighbor lists after
//!   vehicles move. All protocol state flows through messages.
//! * Crashed vehicles are dropped from neighbor lists by that same physical
//!   layer; Dijkstra–Scholten itself is not crash-tolerant (a query to a
//!   silent peer would never be answered), and the thesis' scenarios 2–3
//!   implicitly assume detection — here the heartbeat monitor provides it.
//!
//! # Examples
//!
//! ```
//! use cmvrp_online::{OnlineConfig, OnlineSim};
//! use cmvrp_workloads::{arrivals, spatial};
//! use cmvrp_grid::GridBounds;
//!
//! let bounds = GridBounds::square(8);
//! let demand = spatial::point(&bounds, 30);
//! let jobs = arrivals::from_demand(&demand, arrivals::Ordering::Sequential, 0);
//! let mut sim = OnlineSim::new(bounds, &jobs, OnlineConfig::default());
//! let report = sim.run();
//! assert_eq!(report.served, 30);
//! assert_eq!(report.unserved, 0);
//! ```

pub mod msg;
pub mod sim;
pub mod vehicle;

pub use msg::OnlineMsg;
pub use sim::{
    provision, DenseLimitError, OnlineConfig, OnlineReport, OnlineSim, Provisioning,
    DENSE_VOLUME_LIMIT,
};
pub use vehicle::{Vehicle, VehicleSnapshot, WorkState};
