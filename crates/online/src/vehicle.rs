//! The vehicle process: working state `S1`, message-transfer state `S2`
//! (embedded [`DiffusingEngine`]), energy metering, and the message handlers
//! of §3.2.3–3.2.4.

use crate::msg::OnlineMsg;
use cmvrp_grid::Point;
use cmvrp_net::diffuse::{ComputationId, DiffuseMsg, DiffuseOutcome, DiffusingEngine};
use cmvrp_net::{Context, HeartbeatMonitor, Process, ProcessId};
use cmvrp_obs::Event;

/// The working state `S1` of §3.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkState {
    /// Waiting to be summoned; serves nothing.
    Idle,
    /// Serving the jobs of its pair.
    Active,
    /// Out of usable energy; can still communicate and relay.
    Done,
}

/// Outcome of a service attempt delivered by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeResult {
    /// The job was served (energy charged).
    Served,
    /// The vehicle could not serve (not active, or out of energy).
    Refused,
}

/// A vehicle's durable state at a round barrier, for checkpointing.
///
/// Captures exactly the fields that survive quiescence in the sharded
/// engine: position and working state, energy/odometer counters, the
/// claimed-by / diffusing-engine identities that gate Phase II, the
/// communication neighborhood, and the observability counters. Fields
/// that are never set in sharded mode (fault injection, longevity
/// thresholds, the §3.2.5 monitoring ring) are deliberately absent — the
/// sharded engine rejects monitored configurations up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VehicleSnapshot<const D: usize> {
    /// Current position.
    pub pos: Point<D>,
    /// Working state `S1`.
    pub work: WorkState,
    /// Energy drawn so far.
    pub energy_used: u64,
    /// Grid steps walked.
    pub moves: u64,
    /// Jobs served.
    pub serves: u64,
    /// The computation that claimed this idle vehicle, if any.
    pub claimed_by: Option<ComputationId>,
    /// Pending Phase I destination (normally `None` at quiescence).
    pub summon_dest: Option<Point<D>>,
    /// Undrained failed-search flag.
    pub failed_search: bool,
    /// Undrained relocation notification.
    pub arrived: Option<Point<D>>,
    /// Communication neighborhood (process ids in the owning network).
    pub neighbors: Vec<ProcessId>,
    /// Message-type counters `(queries, replies, moves, heartbeats)`.
    pub msg_counts: [u64; 4],
    /// Diffusing computations initiated / completed / found.
    pub diffusions: (u64, u64, u64),
    /// Diffusing-engine durable state: last computation joined and the
    /// next generation number (the engine itself is `waiting`).
    pub engine: (Option<ComputationId>, u64),
}

/// A vehicle: one process of the on-line protocol.
#[derive(Debug)]
pub struct Vehicle<const D: usize> {
    id: ProcessId,
    home: Point<D>,
    pos: Point<D>,
    work: WorkState,
    engine: DiffusingEngine,
    neighbors: Vec<ProcessId>,
    capacity: u64,
    energy_used: u64,
    moves: u64,
    serves: u64,
    claimed_by: Option<ComputationId>,
    /// Where the replacement summoned by *this* vehicle's computation should
    /// go (own position normally; a dead peer's position in monitor mode).
    summon_dest: Option<Point<D>>,
    /// Set when a computation this vehicle initiated ends without a target.
    failed_search: bool,
    /// Set when this vehicle relocated (drained by the driver).
    arrived: Option<Point<D>>,
    /// Scenario 2 fault injection: on becoming done, do NOT initiate, and
    /// stop heartbeating.
    faulty: bool,
    /// Chapter 4 longevity: the vehicle *breaks* (goes silent, serves
    /// nothing, initiates nothing) once `energy_used` reaches this
    /// threshold (`⌊p_i · W⌋`). `None` = never breaks (p = 1).
    breaks_at: Option<u64>,
    /// Set once the longevity threshold has been hit.
    broken: bool,
    /// §3.2.5 monitoring: the peer this vehicle watches and its position.
    watch: Option<(ProcessId, Point<D>)>,
    /// The watcher this vehicle reports its `existing` heartbeats to
    /// (set by the physical layer together with the ring; heartbeats are
    /// end-to-end — the model allows multi-hop relaying).
    report_to: Option<ProcessId>,
    heartbeat: HeartbeatMonitor,
    /// Local tick-round counter — the clock for heartbeat timeouts. Tick
    /// rounds are lockstep across vehicles, unlike simulation time, which
    /// leaps ahead during long message cascades.
    ticks: u64,
    /// Message-type counters: (queries, replies, moves, heartbeats).
    msg_counts: [u64; 4],
    /// Diffusing computations this vehicle initiated.
    diffusions_started: u64,
    /// Of those, how many terminated (at this initiator).
    diffusions_completed: u64,
    /// Of the terminated ones, how many claimed an idle vehicle.
    diffusions_found: u64,
    /// Heartbeat timeouts this vehicle detected as a watcher.
    heartbeat_misses: u64,
}

impl<const D: usize> Vehicle<D> {
    /// Creates a vehicle at `home` with the given battery `capacity`;
    /// `active` selects the initial working state per the pairing.
    pub fn new(id: ProcessId, home: Point<D>, active: bool, capacity: u64) -> Self {
        Vehicle {
            id,
            home,
            pos: home,
            work: if active {
                WorkState::Active
            } else {
                WorkState::Idle
            },
            engine: DiffusingEngine::new(),
            neighbors: Vec::new(),
            capacity,
            energy_used: 0,
            moves: 0,
            serves: 0,
            claimed_by: None,
            summon_dest: None,
            failed_search: false,
            arrived: None,
            faulty: false,
            breaks_at: None,
            broken: false,
            watch: None,
            report_to: None,
            heartbeat: HeartbeatMonitor::new(3),
            ticks: 0,
            msg_counts: [0; 4],
            diffusions_started: 0,
            diffusions_completed: 0,
            diffusions_found: 0,
            heartbeat_misses: 0,
        }
    }

    /// Current working state.
    pub fn work(&self) -> WorkState {
        self.work
    }

    /// Current position.
    pub fn pos(&self) -> Point<D> {
        self.pos
    }

    /// Original depot.
    pub fn home(&self) -> Point<D> {
        self.home
    }

    /// Energy drawn so far (travel + service).
    pub fn energy_used(&self) -> u64 {
        self.energy_used
    }

    /// Battery capacity `W`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Grid steps walked.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Jobs served.
    pub fn serves(&self) -> u64 {
        self.serves
    }

    /// Remaining energy.
    pub fn remaining(&self) -> u64 {
        self.capacity.saturating_sub(self.energy_used)
    }

    /// Physical-layer update of the communication neighborhood.
    pub fn set_neighbors(&mut self, neighbors: Vec<ProcessId>) {
        self.neighbors = neighbors;
    }

    /// The current neighbor list.
    pub fn neighbors(&self) -> &[ProcessId] {
        &self.neighbors
    }

    /// Injects the scenario-2 fault: on exhaustion this vehicle goes silent
    /// instead of initiating its replacement.
    pub fn set_faulty(&mut self, faulty: bool) {
        self.faulty = faulty;
    }

    /// Sets the Chapter 4 longevity threshold: the vehicle breaks after
    /// spending `threshold` energy (pass `⌊p_i·W⌋`). The break is silent —
    /// a broken vehicle neither serves, nor initiates, nor heartbeats — so
    /// recovery requires the §3.2.5 monitoring ring.
    pub fn set_breaks_at(&mut self, threshold: u64) {
        self.breaks_at = Some(threshold);
    }

    /// Whether the longevity threshold has been crossed.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Messages handled, by type: `(queries, replies, moves, heartbeats)`.
    pub fn message_counts(&self) -> (u64, u64, u64, u64) {
        let [q, r, m, h] = self.msg_counts;
        (q, r, m, h)
    }

    /// Observability counters:
    /// `(diffusions started, completed, found, heartbeat misses)`.
    pub fn obs_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.diffusions_started,
            self.diffusions_completed,
            self.diffusions_found,
            self.heartbeat_misses,
        )
    }

    /// Captures the vehicle's durable state at a round barrier.
    ///
    /// # Panics
    ///
    /// Panics if the embedded diffusing engine is mid-computation —
    /// checkpoints are only taken at quiescent barriers.
    pub fn snapshot(&self) -> VehicleSnapshot<D> {
        VehicleSnapshot {
            pos: self.pos,
            work: self.work,
            energy_used: self.energy_used,
            moves: self.moves,
            serves: self.serves,
            claimed_by: self.claimed_by,
            summon_dest: self.summon_dest,
            failed_search: self.failed_search,
            arrived: self.arrived,
            neighbors: self.neighbors.clone(),
            msg_counts: self.msg_counts,
            diffusions: (
                self.diffusions_started,
                self.diffusions_completed,
                self.diffusions_found,
            ),
            engine: self.engine.quiescent_state(),
        }
    }

    /// Reinjects state captured with [`Vehicle::snapshot`] into a freshly
    /// constructed vehicle (same id, home, and capacity).
    pub fn restore(&mut self, snap: &VehicleSnapshot<D>) {
        self.pos = snap.pos;
        self.work = snap.work;
        self.energy_used = snap.energy_used;
        self.moves = snap.moves;
        self.serves = snap.serves;
        self.claimed_by = snap.claimed_by;
        self.summon_dest = snap.summon_dest;
        self.failed_search = snap.failed_search;
        self.arrived = snap.arrived;
        self.neighbors = snap.neighbors.clone();
        self.msg_counts = snap.msg_counts;
        let (started, completed, found) = snap.diffusions;
        self.diffusions_started = started;
        self.diffusions_completed = completed;
        self.diffusions_found = found;
        let (init, next_generation) = snap.engine;
        self.engine = DiffusingEngine::from_quiescent(init, next_generation);
    }

    /// Sets the §3.2.5 monitoring target (or clears it). Re-setting the
    /// same target only refreshes the recorded position — the silence timer
    /// keeps running, otherwise frequent rewiring would mask real silence.
    /// Timestamps are in local tick rounds, not simulation time.
    pub fn set_watch(&mut self, watch: Option<(ProcessId, Point<D>)>) {
        match (self.watch, watch) {
            (Some((old, _)), Some((new, pos))) if old == new => {
                self.watch = Some((new, pos));
            }
            _ => {
                if let Some((old, _)) = self.watch {
                    self.heartbeat.unwatch(old);
                }
                if let Some((peer, _)) = watch {
                    self.heartbeat.watch(peer, self.ticks);
                }
                self.watch = watch;
            }
        }
    }

    /// Sets the watcher this vehicle heartbeats to.
    pub fn set_report_to(&mut self, watcher: Option<ProcessId>) {
        self.report_to = watcher;
    }

    /// Drains the relocation notification (driver bookkeeping).
    pub fn take_arrival(&mut self) -> Option<Point<D>> {
        self.arrived.take()
    }

    /// Drains the failed-search flag.
    pub fn take_failed_search(&mut self) -> bool {
        std::mem::take(&mut self.failed_search)
    }

    /// Attempts to serve one job at `job` (driver-delivered arrival).
    ///
    /// An active vehicle walks from its current position to the job vertex
    /// (normally a step of at most 1 within its pair) and serves it; if its
    /// remaining energy afterwards cannot cover one more walk-and-serve
    /// (`< 2`), it becomes done and — unless faulty — initiates Phase I.
    pub fn serve(&mut self, ctx: &mut Context<OnlineMsg<D>>, job: Point<D>) -> ServeResult {
        if self.work != WorkState::Active {
            return ServeResult::Refused;
        }
        let cost = self.pos.manhattan(job) + 1;
        if let Some(limit) = self.breaks_at {
            if self.energy_used + cost > limit {
                // Chapter 4 break: silent death, no Phase I.
                self.broken = true;
                self.faulty = true;
                self.work = WorkState::Done;
                return ServeResult::Refused;
            }
        }
        if self.energy_used + cost > self.capacity {
            // Cannot serve: give up the pair now so a replacement can come.
            self.become_done(ctx);
            return ServeResult::Refused;
        }
        self.moves += self.pos.manhattan(job);
        self.pos = job;
        self.serves += 1;
        self.energy_used += cost;
        if self.remaining() < 2 {
            self.become_done(ctx);
        }
        ServeResult::Served
    }

    /// Transition `active → done`, initiating the replacement search unless
    /// the vehicle is faulty or already engaged.
    fn become_done(&mut self, ctx: &mut Context<OnlineMsg<D>>) {
        if self.work == WorkState::Done {
            return;
        }
        self.work = WorkState::Done;
        if self.faulty {
            return;
        }
        self.initiate_replacement(ctx, self.pos);
    }

    /// Starts a diffusing computation summoning an idle vehicle to `dest`.
    /// Used both by the done vehicle itself and by monitors acting for a
    /// silent peer (§3.2.5).
    pub fn initiate_replacement(&mut self, ctx: &mut Context<OnlineMsg<D>>, dest: Point<D>) {
        if !self.engine.is_waiting() {
            // Already part of a computation; the driver retries later.
            return;
        }
        self.summon_dest = Some(dest);
        let neighbors = self.neighbors.clone();
        let (out, outcome) = self.engine.start(self.id, &neighbors);
        self.diffusions_started += 1;
        if ctx.obs_enabled() {
            let generation = self.engine.computation().map_or(0, |c| c.generation);
            ctx.emit(Event::DiffusionStarted {
                t: ctx.now(),
                initiator: self.id,
                generation,
            });
        }
        for (to, m) in out {
            ctx.send(to, OnlineMsg::Diffuse(m));
        }
        self.handle_outcome(ctx, outcome);
    }

    fn handle_outcome(&mut self, ctx: &mut Context<OnlineMsg<D>>, outcome: DiffuseOutcome) {
        match outcome {
            DiffuseOutcome::ClaimedAsTarget { init } => {
                self.claimed_by = Some(init);
            }
            DiffuseOutcome::InitiatorDone { child } => {
                self.diffusions_completed += 1;
                if child.is_some() {
                    self.diffusions_found += 1;
                }
                if ctx.obs_enabled() {
                    let generation = self.engine.computation().map_or(0, |c| c.generation);
                    ctx.emit(Event::DiffusionCompleted {
                        t: ctx.now(),
                        initiator: self.id,
                        generation,
                        found: child.is_some(),
                    });
                }
                match (child, self.summon_dest) {
                    (Some(child), Some(dest)) => {
                        ctx.send(
                            child,
                            OnlineMsg::Move {
                                dest,
                                init: self.engine.computation().expect("own computation"),
                            },
                        );
                        self.summon_dest = None;
                    }
                    _ => {
                        self.failed_search = true;
                        self.summon_dest = None;
                    }
                }
            }
            DiffuseOutcome::LocalDone | DiffuseOutcome::None => {}
        }
    }

    fn on_move(&mut self, ctx: &mut Context<OnlineMsg<D>>, dest: Point<D>, init: ComputationId) {
        if self.work == WorkState::Idle && self.claimed_by == Some(init) {
            // Phase II endpoint: relocate and activate.
            let dist = self.pos.manhattan(dest);
            self.energy_used += dist;
            self.moves += dist;
            self.pos = dest;
            self.work = WorkState::Active;
            self.claimed_by = None;
            self.arrived = Some(dest);
            if ctx.obs_enabled() {
                ctx.emit(Event::ReplacementCycle {
                    t: ctx.now(),
                    vehicle: self.id,
                    dest: dest.coords().to_vec(),
                    dist,
                });
            }
            return;
        }
        if self.engine.computation() == Some(init) {
            if let Some(child) = self.engine.child() {
                ctx.send(child, OnlineMsg::Move { dest, init });
            }
        }
        // Stale or misrouted move order: drop (counted by driver through
        // quiescence bookkeeping — nothing arrives).
    }
}

impl<const D: usize> Process<OnlineMsg<D>> for Vehicle<D> {
    fn on_message(&mut self, ctx: &mut Context<OnlineMsg<D>>, from: ProcessId, msg: OnlineMsg<D>) {
        match msg {
            OnlineMsg::Diffuse(DiffuseMsg::Query { init }) => {
                self.msg_counts[0] += 1;
                let i_am_target = self.work == WorkState::Idle;
                let neighbors = self.neighbors.clone();
                let (out, outcome) = self.engine.on_query(from, init, i_am_target, &neighbors);
                for (to, m) in out {
                    ctx.send(to, OnlineMsg::Diffuse(m));
                }
                self.handle_outcome(ctx, outcome);
            }
            OnlineMsg::Diffuse(DiffuseMsg::Reply { found, init }) => {
                self.msg_counts[1] += 1;
                let (out, outcome) = self.engine.on_reply(from, found, init);
                for (to, m) in out {
                    ctx.send(to, OnlineMsg::Diffuse(m));
                }
                self.handle_outcome(ctx, outcome);
            }
            OnlineMsg::Move { dest, init } => {
                self.msg_counts[2] += 1;
                self.on_move(ctx, dest, init)
            }
            OnlineMsg::Existing => {
                self.msg_counts[3] += 1;
                // Clock heartbeats in tick rounds: Existing sent at round k
                // arrives before anyone reaches round k+1 (the driver
                // quiesces between ticks).
                self.heartbeat.record(from, self.ticks);
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<OnlineMsg<D>>, _now: u64) {
        self.ticks += 1;
        // Heartbeat: announce "existing" to the designated watcher, except
        // when faulty-and-done (scenario 2's silence). Crashed vehicles are
        // muted by the network itself.
        let silent = (self.faulty && self.work == WorkState::Done) || self.broken;
        if !silent {
            if let Some(watcher) = self.report_to {
                ctx.send(watcher, OnlineMsg::Existing);
            }
        }
        // Monitoring: if the watched peer has gone silent, summon its
        // replacement.
        if let Some((peer, peer_pos)) = self.watch {
            if self.work == WorkState::Active
                && self.engine.is_waiting()
                && self.heartbeat.expired(self.ticks).contains(&peer)
            {
                self.heartbeat_misses += 1;
                if ctx.obs_enabled() {
                    ctx.emit(Event::HeartbeatMissed {
                        t: self.ticks,
                        watcher: self.id,
                        peer,
                    });
                }
                self.heartbeat.unwatch(peer);
                self.watch = None;
                self.initiate_replacement(ctx, peer_pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmvrp_grid::pt2;
    use cmvrp_net::{NetConfig, Network};

    fn ctx_harness<R>(
        f: impl FnOnce(&mut Vehicle<2>, &mut Context<OnlineMsg<2>>) -> R,
    ) -> (Vehicle<2>, R, u64) {
        // Run a single vehicle inside a real network to get a Context.
        let v = Vehicle::new(0, pt2(0, 0), true, 10);
        let mut net = Network::new(vec![v], NetConfig::default());
        let r = net.trigger(0, |v, ctx| f(v, ctx));
        let sent = net.total_sent();
        // Extract the vehicle back for inspection.
        let v = std::mem::replace(net.process_mut(0), Vehicle::new(9, pt2(9, 9), false, 0));
        (v, r, sent)
    }

    #[test]
    fn serve_charges_walk_plus_one() {
        let (v, res, _) = ctx_harness(|v, ctx| v.serve(ctx, pt2(0, 1)));
        assert_eq!(res, ServeResult::Served);
        assert_eq!(v.energy_used(), 2);
        assert_eq!(v.pos(), pt2(0, 1));
        assert_eq!(v.serves(), 1);
        assert_eq!(v.moves(), 1);
    }

    #[test]
    fn idle_vehicle_refuses() {
        let v = Vehicle::<2>::new(0, pt2(0, 0), false, 10);
        let mut net = Network::new(vec![v], NetConfig::default());
        let res = net.trigger(0, |v, ctx| v.serve(ctx, pt2(0, 0)));
        assert_eq!(res, ServeResult::Refused);
    }

    #[test]
    fn exhaustion_triggers_done() {
        let v = Vehicle::<2>::new(0, pt2(0, 0), true, 3);
        let mut net = Network::new(vec![v], NetConfig::default());
        // Cost 1 (serve in place): remaining 2 → still active.
        assert_eq!(
            net.trigger(0, |v, c| v.serve(c, pt2(0, 0))),
            ServeResult::Served
        );
        assert_eq!(net.process(0).work(), WorkState::Active);
        // Cost 1: remaining 1 < 2 → done, and with no neighbors the search
        // fails immediately.
        assert_eq!(
            net.trigger(0, |v, c| v.serve(c, pt2(0, 0))),
            ServeResult::Served
        );
        assert_eq!(net.process(0).work(), WorkState::Done);
        assert!(net.process_mut(0).take_failed_search());
    }

    #[test]
    fn over_cost_job_refused_and_done() {
        let v = Vehicle::<2>::new(0, pt2(0, 0), true, 2);
        let mut net = Network::new(vec![v], NetConfig::default());
        // Job 4 away: cost 5 > 2 → refuse and go done.
        assert_eq!(
            net.trigger(0, |v, c| v.serve(c, pt2(2, 2))),
            ServeResult::Refused
        );
        assert_eq!(net.process(0).work(), WorkState::Done);
        assert_eq!(net.process(0).energy_used(), 0);
    }

    #[test]
    fn faulty_vehicle_does_not_initiate() {
        let mut v = Vehicle::<2>::new(0, pt2(0, 0), true, 2);
        v.set_faulty(true);
        v.set_neighbors(vec![1]);
        let mut net = Network::new(
            vec![v, Vehicle::new(1, pt2(0, 1), false, 10)],
            NetConfig::default(),
        );
        net.trigger(0, |v, c| v.serve(c, pt2(0, 0)));
        net.trigger(0, |v, c| v.serve(c, pt2(0, 0)));
        assert_eq!(net.process(0).work(), WorkState::Done);
        let report = net.run_to_quiescence();
        assert_eq!(report.delivered, 0, "faulty done vehicle must stay silent");
    }

    #[test]
    fn two_vehicle_replacement_end_to_end() {
        // Active 0 at (0,0), idle 1 at (0,1), neighbors of each other.
        let mut a = Vehicle::<2>::new(0, pt2(0, 0), true, 4);
        a.set_neighbors(vec![1]);
        let mut b = Vehicle::<2>::new(1, pt2(0, 1), false, 10);
        b.set_neighbors(vec![0]);
        let mut net = Network::new(vec![a, b], NetConfig::default());
        // Exhaust vehicle 0: serve 3 jobs in place (capacity 4 → after 3rd,
        // remaining 1 < 2 → done + initiate).
        for _ in 0..3 {
            assert_eq!(
                net.trigger(0, |v, c| v.serve(c, pt2(0, 0))),
                ServeResult::Served
            );
        }
        assert_eq!(net.process(0).work(), WorkState::Done);
        let report = net.run_to_quiescence();
        assert!(report.quiesced);
        // Vehicle 1 moved to (0,0) and became active.
        assert_eq!(net.process(1).work(), WorkState::Active);
        assert_eq!(net.process(1).pos(), pt2(0, 0));
        assert_eq!(net.process(1).energy_used(), 1); // one step of travel
        assert_eq!(net.process_mut(1).take_arrival(), Some(pt2(0, 0)));
        assert!(!net.process_mut(0).take_failed_search());
    }

    #[test]
    fn heartbeat_monitor_summons_replacement_for_crashed_peer() {
        // 0 active, 1 active (will crash), 2 idle. 0 watches 1.
        let mut a = Vehicle::<2>::new(0, pt2(0, 0), true, 20);
        a.set_neighbors(vec![1, 2]);
        a.set_watch(Some((1, pt2(2, 0))));
        let mut b = Vehicle::<2>::new(1, pt2(2, 0), true, 20);
        b.set_neighbors(vec![0, 2]);
        b.set_report_to(Some(0));
        let mut c = Vehicle::<2>::new(2, pt2(1, 0), false, 20);
        c.set_neighbors(vec![0, 1]);
        let mut net = Network::new(vec![a, b, c], NetConfig::default());
        net.crash(1);
        // Physical layer removes the crashed radio from neighbor lists.
        net.process_mut(0).set_neighbors(vec![2]);
        net.process_mut(2).set_neighbors(vec![0]);
        // Several silent ticks: heartbeat timeout is 3.
        for _ in 0..6 {
            net.tick_all();
            net.run_to_quiescence();
        }
        // Vehicle 2 must have been summoned to (2,0).
        assert_eq!(net.process(2).work(), WorkState::Active);
        assert_eq!(net.process(2).pos(), pt2(2, 0));
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut a = Vehicle::<2>::new(0, pt2(0, 0), true, 4);
        a.set_neighbors(vec![1]);
        let mut b = Vehicle::<2>::new(1, pt2(0, 1), false, 10);
        b.set_neighbors(vec![0]);
        let mut net = Network::new(vec![a, b], NetConfig::default());
        for _ in 0..3 {
            net.trigger(0, |v, c| {
                v.serve(c, pt2(0, 0));
            });
        }
        assert!(net.run_to_quiescence().quiesced);
        // Vehicle 1 relocated; snapshot both, restore into fresh shells.
        for id in 0..2 {
            let snap = net.process(id).snapshot();
            let home = net.process(id).home();
            let cap = net.process(id).capacity();
            let active_at_birth = id == 0;
            let mut fresh = Vehicle::<2>::new(id, home, active_at_birth, cap);
            fresh.restore(&snap);
            assert_eq!(fresh.snapshot(), snap);
            assert_eq!(fresh.pos(), net.process(id).pos());
            assert_eq!(fresh.work(), net.process(id).work());
            assert_eq!(fresh.energy_used(), net.process(id).energy_used());
        }
    }

    #[test]
    fn accessors_and_remaining() {
        let v = Vehicle::<2>::new(5, pt2(3, 4), false, 17);
        assert_eq!(v.home(), pt2(3, 4));
        assert_eq!(v.capacity(), 17);
        assert_eq!(v.remaining(), 17);
        assert_eq!(v.work(), WorkState::Idle);
        assert!(v.neighbors().is_empty());
    }
}
