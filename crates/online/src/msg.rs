//! Wire messages of the on-line protocol.

use cmvrp_grid::Point;
use cmvrp_net::diffuse::{ComputationId, DiffuseMsg};
use cmvrp_obs::MsgKind;

/// Messages exchanged by vehicles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlineMsg<const D: usize> {
    /// Phase I traffic (Algorithm 2 queries/replies).
    Diffuse(DiffuseMsg),
    /// Phase II: walk the `child` path and order the idle endpoint to
    /// relocate to `dest` and become active.
    Move {
        /// Target position (the done/dead vehicle's post).
        dest: Point<D>,
        /// The computation this order concludes.
        init: ComputationId,
    },
    /// §3.2.5 heartbeat ("existing" message).
    Existing,
}

impl<const D: usize> OnlineMsg<D> {
    /// Protocol classification for trace annotation
    /// ([`cmvrp_net::Network::set_msg_classifier`]): Phase I queries and
    /// replies keep their Dijkstra–Scholten roles, move orders are
    /// `Move`, and §3.2.5 "existing" heartbeats are `Heartbeat`.
    pub fn kind(&self) -> MsgKind {
        match self {
            OnlineMsg::Diffuse(DiffuseMsg::Query { .. }) => MsgKind::Query,
            OnlineMsg::Diffuse(DiffuseMsg::Reply { .. }) => MsgKind::Reply,
            OnlineMsg::Move { .. } => MsgKind::Move,
            OnlineMsg::Existing => MsgKind::Heartbeat,
        }
    }
}

impl<const D: usize> From<DiffuseMsg> for OnlineMsg<D> {
    fn from(m: DiffuseMsg) -> Self {
        OnlineMsg::Diffuse(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmvrp_grid::pt2;
    use cmvrp_net::diffuse::ComputationId;

    #[test]
    fn kinds_cover_all_variants() {
        use cmvrp_obs::MsgKind;
        let init = ComputationId {
            initiator: 0,
            generation: 0,
        };
        let q: OnlineMsg<2> = DiffuseMsg::Query { init }.into();
        let r: OnlineMsg<2> = DiffuseMsg::Reply { found: true, init }.into();
        assert_eq!(q.kind(), MsgKind::Query);
        assert_eq!(r.kind(), MsgKind::Reply);
        let mv: OnlineMsg<2> = OnlineMsg::Move {
            dest: pt2(0, 0),
            init,
        };
        assert_eq!(mv.kind(), MsgKind::Move);
        assert_eq!(OnlineMsg::<2>::Existing.kind(), MsgKind::Heartbeat);
    }

    #[test]
    fn from_diffuse() {
        let init = ComputationId {
            initiator: 1,
            generation: 0,
        };
        let m: OnlineMsg<2> = DiffuseMsg::Query { init }.into();
        assert!(matches!(m, OnlineMsg::Diffuse(DiffuseMsg::Query { .. })));
    }

    #[test]
    fn move_carries_destination() {
        let init = ComputationId {
            initiator: 3,
            generation: 7,
        };
        let m: OnlineMsg<2> = OnlineMsg::Move {
            dest: pt2(1, 2),
            init,
        };
        if let OnlineMsg::Move { dest, init } = m {
            assert_eq!(dest, pt2(1, 2));
            assert_eq!(init.generation, 7);
        } else {
            panic!("wrong variant");
        }
    }
}
