//! The on-line simulation driver: job delivery, quiescence between
//! arrivals, physical-layer bookkeeping, and the Theorem 1.4.2 accounting.

use crate::msg::OnlineMsg;
use crate::vehicle::{ServeResult, Vehicle, WorkState};
use cmvrp_core::cubes::omega_c;
use cmvrp_core::plan::lemma_side;
use cmvrp_grid::{pairing_in_cube, CubeId, CubePartition, GridBounds, Pairing, Point};
use cmvrp_net::{NetConfig, Network, ProcessId};
use cmvrp_obs::{Event, Histogram, Metrics, NullSink, StaticSink, DEFAULT_BUCKETS};
use cmvrp_util::Ratio;
use cmvrp_workloads::JobSequence;
use std::collections::HashMap;

/// Configuration of an on-line simulation.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Message-delay RNG seed.
    pub seed: u64,
    /// Communication radius: vehicles within this Manhattan distance (and
    /// the same cube) are neighbors. The thesis uses 2 (§3.2 footnote).
    pub comm_radius: u64,
    /// Explicit battery capacity; `None` derives the Lemma 3.3.1
    /// provisioning from the job sequence.
    pub capacity_override: Option<u64>,
    /// Enable §3.2.5 heartbeat monitoring (needed for fault scenarios).
    pub monitored: bool,
    /// Heartbeat rounds interleaved after each job when monitoring.
    pub ticks_per_job: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            seed: 1,
            comm_radius: 2,
            capacity_override: None,
            monitored: false,
            ticks_per_job: 1,
        }
    }
}

/// Largest grid volume (vertex count) the dense sequential simulator will
/// materialize: one `Vehicle` per vertex up to a 512×512 grid. Beyond this,
/// [`OnlineSim::try_new`] returns [`DenseLimitError`] instead of allocating
/// gigabytes — the sparse sharded engine (`cmvrp-engine`, `simulate
/// --threads N`) handles those grids with memory proportional to *active*
/// vehicles only.
pub const DENSE_VOLUME_LIMIT: u64 = 1 << 18;

/// Error returned when a grid is too large for the dense per-vertex
/// simulator (see [`DENSE_VOLUME_LIMIT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseLimitError {
    /// The offending grid's vertex count.
    pub volume: u64,
    /// The dense-mode ceiling that was exceeded.
    pub limit: u64,
}

impl std::fmt::Display for DenseLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid volume {} exceeds the dense engine limit {}; use the sparse \
             sharded engine instead (cmvrp-engine, or `simulate --threads N`)",
            self.volume, self.limit
        )
    }
}

impl std::error::Error for DenseLimitError {}

/// The derived per-run provisioning: cube side (Lemma 2.2.5), the demand's
/// `ω_c`, and the Lemma 3.3.1 battery capacity. Shared by the dense
/// sequential simulator and the sharded engine so both provision fleets
/// identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provisioning {
    /// Cube side `⌈ω⌉` used for the partition.
    pub side: u64,
    /// The demand's `ω_c` (reported for ratio tables).
    pub omega: Ratio,
    /// Per-vehicle battery capacity `W`.
    pub capacity: u64,
}

/// Computes the cube side, `ω_c`, and battery capacity for a demand field,
/// honoring `config.capacity_override` when set.
pub fn provision<const D: usize>(
    bounds: &GridBounds<D>,
    demand: &cmvrp_grid::DemandMap<D>,
    config: &OnlineConfig,
) -> Provisioning {
    let side = lemma_side(bounds, demand);
    let omega = omega_c(bounds, demand);
    let capacity = config.capacity_override.unwrap_or_else(|| {
        // Lemma 3.3.1 provisioning, discretized: a per-vehicle job
        // budget of 4·⌈M/side^ℓ⌉ + 4 (so at most half the cube's
        // vehicles can exhaust) plus the ℓ·ω_c relocation reserve.
        let m = cmvrp_core::max_window_sum(bounds, demand, side) as u128;
        let per = m.div_ceil((side as u128).pow(D as u32));
        let job_budget = 4 * per as u64 + 4;
        job_budget + (D as u64) * side.saturating_sub(1) + 2
    });
    Provisioning {
        side,
        omega,
        capacity,
    }
}

/// Outcome of an on-line run — the quantities experiment E7 tabulates.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Jobs served.
    pub served: u64,
    /// Jobs that could not be served (0 under theorem provisioning).
    pub unserved: u64,
    /// The per-vehicle battery capacity used in this run.
    pub capacity: u64,
    /// Maximum energy any vehicle actually drew — the empirical `Won`.
    pub max_energy_used: u64,
    /// Replacements completed (Phase I + II cycles).
    pub replacements: u64,
    /// Diffusing computations that found no idle vehicle.
    pub failed_replacements: u64,
    /// Total messages delivered by the network.
    pub messages: u64,
    /// Mean per-message network delay in delivery steps (0 when silent).
    pub mean_msg_delay: f64,
    /// Largest per-message network delay observed.
    pub max_msg_delay: u64,
    /// High-water mark of the network's in-flight message queue.
    pub max_queue_depth: u64,
    /// Diffusing computations (message waves) initiated across the fleet.
    pub diffusions: u64,
    /// Heartbeat timeouts detected by watchers (monitored mode only).
    pub heartbeat_misses: u64,
    /// The `ω_c` of the realized demand (reported for ratio tables).
    pub omega_c: Ratio,
    /// The cube side used for the partition.
    pub cube_side: u64,
}

/// The on-line simulator: a [`Network`] of [`Vehicle`]s plus the
/// physical-layer registry (positions, pairings, neighbor lists).
#[derive(Debug)]
pub struct OnlineSim<const D: usize, S: StaticSink = NullSink> {
    net: Network<Vehicle<D>, OnlineMsg<D>, S>,
    bounds: GridBounds<D>,
    part: CubePartition<D>,
    pairings: HashMap<CubeId<D>, Pairing<D>>,
    /// Active vehicle currently responsible for each (cube, pair).
    pair_active: HashMap<(CubeId<D>, usize), ProcessId>,
    id_of_home: HashMap<Point<D>, ProcessId>,
    jobs: JobSequence<D>,
    config: OnlineConfig,
    capacity: u64,
    omega: Ratio,
    side: u64,
    replacements: u64,
    failed_replacements: u64,
    /// Jobs handed to the driver so far (trace sequence numbers).
    job_seq: u64,
    /// Reusable arrival event so the per-job `pos` buffer is allocated
    /// once, not per arrival (the sink hot path sees one per job).
    arrival_scratch: Event,
}

impl<const D: usize> OnlineSim<D> {
    /// Builds the simulation for a job sequence: derives the cube partition
    /// and provisioning from the sequence's induced demand (see the crate
    /// docs on faithfulness), places one vehicle per vertex, pairs each
    /// cube, and computes initial neighbor lists.
    pub fn new(bounds: GridBounds<D>, jobs: &JobSequence<D>, config: OnlineConfig) -> Self {
        OnlineSim::with_sink(bounds, jobs, config, NullSink)
    }

    /// Like [`OnlineSim::new`], but returns [`DenseLimitError`] instead of
    /// panicking when the grid is too large for dense materialization.
    ///
    /// # Errors
    ///
    /// Returns [`DenseLimitError`] when `bounds.volume()` exceeds
    /// [`DENSE_VOLUME_LIMIT`].
    pub fn try_new(
        bounds: GridBounds<D>,
        jobs: &JobSequence<D>,
        config: OnlineConfig,
    ) -> Result<Self, DenseLimitError> {
        OnlineSim::try_with_sink(bounds, jobs, config, NullSink)
    }
}

impl<const D: usize, S: StaticSink> OnlineSim<D, S> {
    /// Like [`OnlineSim::new`], but every network and protocol event is
    /// also recorded into `sink` (see `cmvrp_obs` for the event schema).
    pub fn with_sink(
        bounds: GridBounds<D>,
        jobs: &JobSequence<D>,
        config: OnlineConfig,
        sink: S,
    ) -> Self {
        OnlineSim::try_with_sink(bounds, jobs, config, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`OnlineSim::with_sink`], but returns [`DenseLimitError`]
    /// instead of panicking when the grid is too large for dense
    /// materialization (one process per vertex).
    ///
    /// # Errors
    ///
    /// Returns [`DenseLimitError`] when `bounds.volume()` exceeds
    /// [`DENSE_VOLUME_LIMIT`].
    pub fn try_with_sink(
        bounds: GridBounds<D>,
        jobs: &JobSequence<D>,
        config: OnlineConfig,
        sink: S,
    ) -> Result<Self, DenseLimitError> {
        if bounds.volume() > DENSE_VOLUME_LIMIT {
            return Err(DenseLimitError {
                volume: bounds.volume(),
                limit: DENSE_VOLUME_LIMIT,
            });
        }
        for job in jobs.iter() {
            assert!(bounds.contains(job), "job at {job} outside bounds");
        }
        let demand = jobs.to_demand();
        let Provisioning {
            side,
            omega,
            capacity,
        } = provision(&bounds, &demand, &config);
        let part = CubePartition::new(bounds, side);
        let mut pairings = HashMap::new();
        let mut pair_active = HashMap::new();
        let mut id_of_home = HashMap::new();
        let mut vehicles: Vec<Vehicle<D>> = Vec::with_capacity(bounds.volume() as usize);
        // Deterministic vehicle ids: lexicographic home order.
        for (id, home) in bounds.iter().enumerate() {
            id_of_home.insert(home, id);
            vehicles.push(Vehicle::new(id, home, false, capacity));
        }
        for cube_id in part.cubes() {
            let cube = part.cube_bounds(cube_id);
            let pairing = pairing_in_cube(&cube);
            for (idx, (primary, _)) in pairing.pairs().iter().enumerate() {
                let vid = id_of_home[primary];
                vehicles[vid] = Vehicle::new(vid, *primary, true, capacity);
                pair_active.insert((cube_id, idx), vid);
            }
            pairings.insert(cube_id, pairing);
        }
        let mut net = Network::with_sink(
            vehicles,
            NetConfig {
                seed: config.seed,
                ..NetConfig::default()
            },
            sink,
        );
        if S::ENABLED {
            net.set_msg_classifier(OnlineMsg::<D>::kind);
            let t = net.now();
            net.sink_mut().record(&cmvrp_obs::Event::FleetProvisioned {
                t,
                vehicles: bounds.volume(),
                capacity,
            });
        }
        let mut sim = OnlineSim {
            net,
            bounds,
            part,
            pairings,
            pair_active,
            id_of_home,
            jobs: jobs.clone(),
            config,
            capacity,
            omega,
            side,
            replacements: 0,
            failed_replacements: 0,
            job_seq: 0,
            arrival_scratch: Event::JobArrived {
                t: 0,
                seq: 0,
                pos: Vec::with_capacity(D),
            },
        };
        for cube_id in sim.part.cubes().collect::<Vec<_>>() {
            sim.recompute_neighbors(cube_id);
        }
        if config.monitored {
            sim.rewire_monitors();
        }
        Ok(sim)
    }

    /// The battery capacity in use.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The grid the fleet operates on.
    pub fn bounds(&self) -> &GridBounds<D> {
        &self.bounds
    }

    /// Immutable access to the underlying network (for inspection).
    pub fn network(&self) -> &Network<Vehicle<D>, OnlineMsg<D>, S> {
        &self.net
    }

    /// The event sink.
    pub fn sink(&self) -> &S {
        self.net.sink()
    }

    /// Mutable access to the event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        self.net.sink_mut()
    }

    /// Consumes the simulator, flushing and returning the sink.
    pub fn into_sink(self) -> S {
        self.net.into_sink()
    }

    /// Snapshot of every always-on metric: the network's message counters
    /// and delay histogram plus fleet-level `online.*` counters and the
    /// per-vehicle energy distribution.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.net.metrics();
        let mut energy = Histogram::with_bounds(&DEFAULT_BUCKETS);
        let (mut ds, mut dc, mut df, mut hm) = (0u64, 0u64, 0u64, 0u64);
        for id in 0..self.net.len() {
            let v = self.net.process(id);
            if v.energy_used() > 0 {
                energy.observe(v.energy_used());
            }
            let (s, c, f, h) = v.obs_counts();
            ds += s;
            dc += c;
            df += f;
            hm += h;
        }
        m.set_histogram("online.vehicle_energy", energy);
        m.add("online.diffusions_started", ds);
        m.add("online.diffusions_completed", dc);
        m.add("online.diffusions_found", df);
        m.add("online.heartbeat_misses", hm);
        m.add("online.jobs_arrived", self.job_seq);
        m.add("online.replacements", self.replacements);
        m.add("online.failed_replacements", self.failed_replacements);
        m
    }

    /// Assigns the next trace sequence number to `job` and records its
    /// arrival.
    fn next_job_seq(&mut self, job: Point<D>) -> u64 {
        let seq = self.job_seq;
        self.job_seq += 1;
        if S::ENABLED {
            let now = self.net.now();
            if let Event::JobArrived { t, seq: s, pos } = &mut self.arrival_scratch {
                *t = now;
                *s = seq;
                pos.clear();
                pos.extend_from_slice(&job.coords());
            }
            self.net.sink_mut().record(&self.arrival_scratch);
        }
        seq
    }

    /// Crashes the vehicle at `home` (scenario 3): it goes silent and the
    /// physical layer drops it from neighbor lists.
    ///
    /// # Panics
    ///
    /// Panics if no vehicle lives at `home`.
    pub fn crash_vehicle_at(&mut self, home: Point<D>) {
        let id = *self.id_of_home.get(&home).expect("no vehicle at position");
        self.net.crash(id);
        let cube = self.part.cube_of(self.net.process(id).pos());
        self.recompute_neighbors(cube);
        if self.config.monitored {
            self.rewire_monitors();
        }
    }

    /// The home vertex of the vehicle currently responsible for jobs at
    /// `p` (the active vehicle of `p`'s pair) — useful for targeting fault
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the grid or its pair has no responsible
    /// vehicle (only possible after an unrecovered failure).
    pub fn responsible_home(&self, p: Point<D>) -> Point<D> {
        let cube = self.part.cube_of(p);
        let pair = self.pairings[&cube].pair_of(p).expect("p on grid");
        let vid = self.pair_active[&(cube, pair)];
        self.net.process(vid).home()
    }

    /// Marks the vehicle at `home` faulty (scenario 2): when it exhausts it
    /// will not initiate its own replacement.
    ///
    /// # Panics
    ///
    /// Panics if no vehicle lives at `home`.
    pub fn set_faulty_at(&mut self, home: Point<D>) {
        let id = *self.id_of_home.get(&home).expect("no vehicle at position");
        self.net.process_mut(id).set_faulty(true);
    }

    /// Assigns a Chapter 4 longevity `p ∈ [0,1]` to the vehicle at `home`:
    /// it breaks silently after spending `⌊p·W⌋` energy (scenario 4 when
    /// applied to many vehicles).
    ///
    /// # Panics
    ///
    /// Panics if no vehicle lives at `home` or `p` is outside `[0,1]`.
    pub fn set_longevity_at(&mut self, home: Point<D>, p: f64) {
        assert!((0.0..=1.0).contains(&p), "longevity out of [0,1]");
        let id = *self.id_of_home.get(&home).expect("no vehicle at position");
        let threshold = (p * self.capacity as f64).floor() as u64;
        self.net.process_mut(id).set_breaks_at(threshold);
    }

    /// Number of vehicles that have broken (Chapter 4 accounting).
    pub fn broken_count(&self) -> u64 {
        (0..self.net.len())
            .filter(|&id| self.net.process(id).is_broken())
            .count() as u64
    }

    /// Distribution of energy drawn across the fleet (only vehicles that
    /// spent anything), for load-balance analysis.
    pub fn energy_summary(&self) -> cmvrp_util::Summary {
        (0..self.net.len())
            .map(|id| self.net.process(id).energy_used() as f64)
            .filter(|&e| e > 0.0)
            .collect()
    }

    /// Fleet-wide message counts by type:
    /// `(queries, replies, moves, heartbeats)`.
    pub fn message_breakdown(&self) -> (u64, u64, u64, u64) {
        let mut total = (0u64, 0u64, 0u64, 0u64);
        for id in 0..self.net.len() {
            let (q, r, m, h) = self.net.process(id).message_counts();
            total.0 += q;
            total.1 += r;
            total.2 += m;
            total.3 += h;
        }
        total
    }

    /// Physical layer: recompute neighbor lists for all vehicles currently
    /// inside `cube` (positions are dynamic but never leave the cube).
    fn recompute_neighbors(&mut self, cube: CubeId<D>) {
        let members: Vec<(ProcessId, Point<D>)> = (0..self.net.len())
            .filter(|&id| !self.net.is_crashed(id))
            .map(|id| (id, self.net.process(id).pos()))
            .filter(|(_, pos)| self.part.cube_of(*pos) == cube)
            .collect();
        for &(id, pos) in &members {
            let neighbors: Vec<ProcessId> = members
                .iter()
                .filter(|(other, opos)| {
                    *other != id && pos.manhattan(*opos) <= self.config.comm_radius
                })
                .map(|(other, _)| *other)
                .collect();
            self.net.process_mut(id).set_neighbors(neighbors);
        }
    }

    /// §3.2.5 monitoring ring: the vehicles currently responsible for each
    /// pair of a cube watch one another in pair-index order. Crashed or
    /// silent vehicles stay in the ring as *watched* targets (that is the
    /// point of monitoring) but cannot act as watchers.
    fn rewire_monitors(&mut self) {
        let cube_ids: Vec<CubeId<D>> = self.part.cubes().collect();
        for cube_id in cube_ids {
            let npairs = self.pairings[&cube_id].pairs().len();
            let members: Vec<ProcessId> = (0..npairs)
                .filter_map(|idx| self.pair_active.get(&(cube_id, idx)).copied())
                .collect();
            for (k, &id) in members.iter().enumerate() {
                if self.net.is_crashed(id) || self.net.process(id).work() != WorkState::Active {
                    continue; // cannot act as a watcher
                }
                let target = members[(k + 1) % members.len()];
                let watch = if target == id {
                    None
                } else {
                    Some((target, self.net.process(target).pos()))
                };
                self.net.process_mut(id).set_watch(watch);
                if target != id {
                    // Tell the target where to send its heartbeats.
                    self.net.process_mut(target).set_report_to(Some(id));
                }
            }
        }
    }

    /// Driver bookkeeping after quiescence: absorb completed relocations
    /// and failed searches.
    fn absorb_events(&mut self) {
        let mut moved: Vec<(ProcessId, Point<D>)> = Vec::new();
        for id in 0..self.net.len() {
            if let Some(dest) = self.net.process_mut(id).take_arrival() {
                moved.push((id, dest));
            }
            if self.net.process_mut(id).take_failed_search() {
                self.failed_replacements += 1;
            }
        }
        for (id, dest) in moved {
            self.replacements += 1;
            let cube = self.part.cube_of(dest);
            let pairing = &self.pairings[&cube];
            let pair = pairing
                .pair_of(dest)
                .expect("relocation destination must be a paired vertex");
            self.pair_active.insert((cube, pair), id);
            self.recompute_neighbors(cube);
        }
        if self.config.monitored {
            self.rewire_monitors();
        }
    }

    /// Delivers one job and lets the network quiesce. Returns whether it
    /// was served.
    fn deliver(&mut self, seq: u64, job: Point<D>) -> bool {
        let cube = self.part.cube_of(job);
        let pair = self.pairings[&cube].pair_of(job).expect("job on grid");
        let mut served = false;
        // Up to two attempts: if the first responsible vehicle cannot serve
        // (exhausted or crashed), quiesce — letting replacement or
        // monitoring run — and retry once.
        for attempt in 0..2 {
            let vid = match self.pair_active.get(&(cube, pair)) {
                Some(&vid) => vid,
                None => break,
            };
            if !self.net.is_crashed(vid) {
                let cost = self.net.process(vid).pos().manhattan(job) + 1;
                let result = self.net.trigger(vid, |v, ctx| v.serve(ctx, job));
                if result == ServeResult::Served {
                    if S::ENABLED {
                        let ev = Event::JobServed {
                            t: self.net.now(),
                            seq,
                            vehicle: vid,
                            cost,
                        };
                        self.net.sink_mut().record(&ev);
                    }
                    served = true;
                    // The server may have gone done and started Phase I.
                    self.net.run_to_quiescence();
                    self.absorb_events();
                    break;
                }
            }
            // Responsible vehicle unavailable: run recovery machinery.
            if self.config.monitored {
                for _ in 0..8 {
                    self.net.tick_all();
                    self.net.run_to_quiescence();
                    self.absorb_events();
                }
            } else {
                self.net.run_to_quiescence();
                self.absorb_events();
            }
            if attempt == 1 {
                break;
            }
        }
        if self.config.monitored {
            for _ in 0..self.config.ticks_per_job {
                self.net.tick_all();
            }
            self.net.run_to_quiescence();
            self.absorb_events();
        }
        served
    }

    /// Replays the whole job sequence and reports the Theorem 1.4.2
    /// accounting.
    pub fn run(&mut self) -> OnlineReport {
        let jobs: Vec<Point<D>> = self.jobs.iter().collect();
        let mut served = 0u64;
        let mut unserved = 0u64;
        for job in jobs {
            let seq = self.next_job_seq(job);
            if self.deliver(seq, job) {
                served += 1;
            } else {
                unserved += 1;
            }
        }
        self.report(served, unserved)
    }

    /// Replays the sequence in bursts: within a batch, jobs are delivered
    /// back-to-back with no quiescence in between (the paper's "small
    /// constant delay" regime); replacement machinery settles only between
    /// batches, with one retry pass for jobs refused mid-batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes do not sum to the job count.
    pub fn run_batched(&mut self, batches: &[usize]) -> OnlineReport {
        let jobs: Vec<Point<D>> = self.jobs.iter().collect();
        assert_eq!(
            batches.iter().sum::<usize>(),
            jobs.len(),
            "batch sizes must cover the sequence"
        );
        let mut served = 0u64;
        let mut unserved = 0u64;
        let mut cursor = 0usize;
        for &batch in batches {
            let mut refused: Vec<(u64, Point<D>)> = Vec::new();
            for &job in &jobs[cursor..cursor + batch] {
                let seq = self.next_job_seq(job);
                if self.try_serve(seq, job) {
                    served += 1;
                } else {
                    refused.push((seq, job));
                }
            }
            cursor += batch;
            // Batch boundary: let all protocol traffic settle, then retry.
            self.net.run_to_quiescence();
            self.absorb_events();
            if self.config.monitored {
                for _ in 0..8 {
                    self.net.tick_all();
                    self.net.run_to_quiescence();
                    self.absorb_events();
                }
            }
            for (seq, job) in refused {
                if self.try_serve(seq, job) {
                    served += 1;
                    self.net.run_to_quiescence();
                    self.absorb_events();
                } else {
                    unserved += 1;
                }
            }
        }
        self.report(served, unserved)
    }

    /// One service attempt with no recovery machinery (batched mode).
    fn try_serve(&mut self, seq: u64, job: Point<D>) -> bool {
        let cube = self.part.cube_of(job);
        let pair = self.pairings[&cube].pair_of(job).expect("job on grid");
        match self.pair_active.get(&(cube, pair)) {
            Some(&vid) if !self.net.is_crashed(vid) => {
                let cost = self.net.process(vid).pos().manhattan(job) + 1;
                let ok = self.net.trigger(vid, |v, ctx| v.serve(ctx, job)) == ServeResult::Served;
                if ok && S::ENABLED {
                    let ev = Event::JobServed {
                        t: self.net.now(),
                        seq,
                        vehicle: vid,
                        cost,
                    };
                    self.net.sink_mut().record(&ev);
                }
                ok
            }
            _ => false,
        }
    }

    fn report(&self, served: u64, unserved: u64) -> OnlineReport {
        let max_energy_used = (0..self.net.len())
            .map(|id| self.net.process(id).energy_used())
            .max()
            .unwrap_or(0);
        let (mut diffusions, mut heartbeat_misses) = (0u64, 0u64);
        for id in 0..self.net.len() {
            let (started, _, _, misses) = self.net.process(id).obs_counts();
            diffusions += started;
            heartbeat_misses += misses;
        }
        let delay = self.net.delay_histogram();
        OnlineReport {
            served,
            unserved,
            capacity: self.capacity,
            max_energy_used,
            replacements: self.replacements,
            failed_replacements: self.failed_replacements,
            messages: self.net.total_delivered(),
            mean_msg_delay: delay.mean(),
            max_msg_delay: delay.max(),
            max_queue_depth: self.net.queue_depth_max() as u64,
            diffusions,
            heartbeat_misses,
            omega_c: self.omega,
            cube_side: self.side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmvrp_core::online_factor;
    use cmvrp_workloads::{arrivals, spatial, Ordering};

    fn run_workload(
        demand: &cmvrp_grid::DemandMap<2>,
        bounds: GridBounds<2>,
        ordering: Ordering,
        config: OnlineConfig,
    ) -> OnlineReport {
        let jobs = arrivals::from_demand(demand, ordering, 3);
        OnlineSim::new(bounds, &jobs, config).run()
    }

    #[test]
    fn point_workload_all_served() {
        let b = GridBounds::square(12);
        let d = spatial::point(&b, 300);
        let report = run_workload(&d, b, Ordering::Sequential, OnlineConfig::default());
        assert_eq!(report.served, 300);
        assert_eq!(report.unserved, 0);
        assert_eq!(report.failed_replacements, 0);
        assert!(report.replacements > 0, "exhaustions must occur");
        assert!(report.max_energy_used <= report.capacity);
    }

    #[test]
    fn line_workload_all_served() {
        let b = GridBounds::square(12);
        let d = spatial::line(&b, 8);
        let report = run_workload(&d, b, Ordering::Interleaved, OnlineConfig::default());
        assert_eq!(report.served, 96);
        assert_eq!(report.unserved, 0);
    }

    #[test]
    fn uniform_workload_all_served() {
        let b = GridBounds::square(10);
        let d = spatial::uniform_random(&b, 120, 5);
        let report = run_workload(&d, b, Ordering::Shuffled, OnlineConfig::default());
        assert_eq!(report.served, 120);
        assert_eq!(report.unserved, 0);
    }

    #[test]
    fn capacity_within_theorem_order() {
        // The derived provisioning stays within a constant multiple of the
        // theorem's (4·3^ℓ+ℓ)·ω_c (allowing discretization slack for tiny
        // ω_c).
        let b = GridBounds::square(12);
        let d = spatial::point(&b, 200);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let sim = OnlineSim::new(b, &jobs, OnlineConfig::default());
        let wc = omega_c(&b, &d).to_f64();
        let theorem = online_factor(2) as f64 * wc.max(1.0);
        assert!(
            (sim.capacity() as f64) <= 2.0 * theorem + 10.0,
            "capacity {} vs theorem {theorem}",
            sim.capacity()
        );
    }

    #[test]
    fn max_energy_bounded_by_capacity_across_seeds() {
        let b = GridBounds::square(8);
        let d = spatial::zipf_clusters(&b, 2, 80, 11);
        for seed in 0..4u64 {
            let report = run_workload(
                &d,
                b,
                Ordering::Shuffled,
                OnlineConfig {
                    seed,
                    ..OnlineConfig::default()
                },
            );
            assert_eq!(report.unserved, 0, "seed {seed}");
            assert!(report.max_energy_used <= report.capacity, "seed {seed}");
        }
    }

    #[test]
    fn starved_capacity_reports_unserved() {
        // Capacity too small to serve everything: the simulator must report
        // the shortfall rather than panic.
        let b = GridBounds::square(6);
        let d = spatial::point(&b, 100);
        let report = run_workload(
            &d,
            b,
            Ordering::Sequential,
            OnlineConfig {
                capacity_override: Some(3),
                ..OnlineConfig::default()
            },
        );
        assert!(report.unserved > 0);
        assert!(report.served < 100);
    }

    #[test]
    fn empty_sequence() {
        let b = GridBounds::square(4);
        let jobs = JobSequence::default();
        let report = OnlineSim::new(b, &jobs, OnlineConfig::default()).run();
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved, 0);
        assert_eq!(report.max_energy_used, 0);
    }

    #[test]
    fn scenario2_faulty_done_vehicle_recovered_by_monitor() {
        let b = GridBounds::square(6);
        let d = spatial::point(&b, 40);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(
            b,
            &jobs,
            OnlineConfig {
                monitored: true,
                ..OnlineConfig::default()
            },
        );
        // The vehicle that first serves the center: make it faulty.
        sim.set_faulty_at(spatial::center(&b));
        let report = sim.run();
        assert_eq!(report.unserved, 0, "monitor must recover: {report:?}");
    }

    #[test]
    fn scenario3_crashed_vehicle_recovered_by_monitor() {
        let b = GridBounds::square(6);
        let d = spatial::point(&b, 30);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(
            b,
            &jobs,
            OnlineConfig {
                monitored: true,
                ..OnlineConfig::default()
            },
        );
        let center = spatial::center(&b);
        sim.crash_vehicle_at(center);
        let report = sim.run();
        // The crashed vehicle's jobs must eventually be served by a
        // replacement; at most the first couple of arrivals are lost while
        // detection runs.
        assert!(report.unserved <= 2, "{report:?}");
        assert!(report.served >= 28);
    }

    #[test]
    fn observability_summaries() {
        let b = GridBounds::square(10);
        let d = spatial::point(&b, 300);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(b, &jobs, OnlineConfig::default());
        let report = sim.run();
        assert_eq!(report.unserved, 0);
        let summary = sim.energy_summary();
        assert!(summary.len() >= 2, "several vehicles must participate");
        assert_eq!(summary.max() as u64, report.max_energy_used);
        let (q, r, m, h) = sim.message_breakdown();
        // At least one move order per replacement (relays forward the
        // order hop by hop); diffusing traffic is query+reply.
        assert!(m >= report.replacements);
        assert!(q > 0 && r > 0);
        assert_eq!(h, 0, "heartbeats only in monitored mode");
        assert_eq!(q + r + m + h, report.messages);
    }

    #[test]
    fn longevity_break_recovered_by_monitor() {
        // Scenario 4 lite: one vehicle with p = 0.3 breaks mid-campaign and
        // is silently replaced through the monitoring ring.
        let b = GridBounds::square(8);
        let d = spatial::point(&b, 200);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(
            b,
            &jobs,
            OnlineConfig {
                monitored: true,
                ..OnlineConfig::default()
            },
        );
        let victim = sim.responsible_home(spatial::center(&b));
        sim.set_longevity_at(victim, 0.3);
        let report = sim.run();
        assert_eq!(report.unserved, 0, "{report:?}");
        assert_eq!(sim.broken_count(), 1);
        assert!(report.replacements >= 2, "{report:?}");
    }

    #[test]
    fn many_broken_vehicles_degrade_service_honestly() {
        // Scenario 4 proper: most of the hotspot cube's vehicles have tiny
        // longevity; the report must surface the shortfall rather than
        // panic.
        let b = GridBounds::square(8);
        let d = spatial::point(&b, 400);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(
            b,
            &jobs,
            OnlineConfig {
                monitored: true,
                ..OnlineConfig::default()
            },
        );
        for p in b.iter() {
            sim.set_longevity_at(p, 0.05);
        }
        let report = sim.run();
        assert_eq!(report.served + report.unserved, 400);
        assert!(report.unserved > 0, "{report:?}");
        assert!(sim.broken_count() > 1);
    }

    #[test]
    fn longevity_one_is_harmless() {
        let b = GridBounds::square(8);
        let d = spatial::point(&b, 100);
        let jobs = arrivals::from_demand(&d, Ordering::Sequential, 0);
        let mut sim = OnlineSim::new(b, &jobs, OnlineConfig::default());
        for p in b.iter() {
            sim.set_longevity_at(p, 1.0);
        }
        let report = sim.run();
        assert_eq!(report.unserved, 0);
        assert_eq!(sim.broken_count(), 0);
    }

    #[test]
    fn batched_delivery_serves_everything() {
        // Bursts are harder than one-at-a-time arrivals, but the retry at
        // batch boundaries plus theorem provisioning still covers all jobs.
        let b = GridBounds::square(10);
        let d = spatial::point(&b, 300);
        let (jobs, batches) = cmvrp_workloads::arrivals::batched(&d, 5, 3);
        let report = OnlineSim::new(b, &jobs, OnlineConfig::default()).run_batched(&batches);
        assert_eq!(report.served + report.unserved, 300);
        // A burst can catch the pair mid-exhaustion before replacement
        // lands; at most one job per replacement may be lost to the retry
        // window.
        assert!(report.unserved <= report.replacements, "{report:?}");
    }

    #[test]
    fn batched_single_job_batches_match_sequential() {
        let b = GridBounds::square(8);
        let d = spatial::uniform_random(&b, 60, 4);
        let jobs = arrivals::from_demand(&d, Ordering::Shuffled, 2);
        let batches = vec![1usize; jobs.len()];
        let a = OnlineSim::new(b, &jobs, OnlineConfig::default()).run_batched(&batches);
        assert_eq!(a.served, 60);
        assert_eq!(a.unserved, 0);
    }

    #[test]
    #[should_panic(expected = "batch sizes must cover")]
    fn batched_size_mismatch_panics() {
        let b = GridBounds::square(4);
        let jobs = JobSequence::new(vec![cmvrp_grid::pt2(1, 1)]);
        let _ = OnlineSim::new(b, &jobs, OnlineConfig::default()).run_batched(&[2]);
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn job_outside_bounds_rejected() {
        let b = GridBounds::square(4);
        let jobs = JobSequence::new(vec![cmvrp_grid::pt2(9, 9)]);
        let _ = OnlineSim::new(b, &jobs, OnlineConfig::default());
    }

    #[test]
    fn message_count_reported() {
        let b = GridBounds::square(12);
        let d = spatial::point(&b, 300);
        let report = run_workload(&d, b, Ordering::Sequential, OnlineConfig::default());
        assert!(report.messages > 0);
        assert!(report.cube_side >= 1);
    }
}
