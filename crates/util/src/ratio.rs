//! Exact rational arithmetic over `i128`.
//!
//! The thesis' characterization of the optimal capacity is intrinsically
//! rational: with integer demands, the density `Σ_{x∈T} d(x) / |N_r(T)|`
//! (Lemma 2.2.2) and the fixed point `ω*` (Lemma 2.2.3) are ratios of
//! integers. Computing them in floating point would make equality-based
//! Dinkelbach termination unreliable, so every exact solver in the workspace
//! works over [`Ratio`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
///
/// # Examples
///
/// ```
/// use cmvrp_util::Ratio;
///
/// let r = Ratio::new(6, -4);
/// assert_eq!(r, Ratio::new(-3, 2));
/// assert_eq!(r.to_f64(), -1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational number zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.unsigned_abs() as i128, den.unsigned_abs() as i128);
        let g = gcd(num, den).max(1);
        Ratio {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// Creates the rational `n / 1`.
    pub fn from_integer(n: i128) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// The numerator (may be negative).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Converts to the nearest `f64` (used only at API boundaries and for
    /// display; exact computations should stay in `Ratio`).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Whether this rational equals an integer value.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Floor of the rational as an integer.
    ///
    /// ```
    /// use cmvrp_util::Ratio;
    /// assert_eq!(Ratio::new(7, 2).floor(), 3);
    /// assert_eq!(Ratio::new(-7, 2).floor(), -4);
    /// assert_eq!(Ratio::new(6, 2).floor(), 3);
    /// ```
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Ceiling of the rational as an integer.
    ///
    /// ```
    /// use cmvrp_util::Ratio;
    /// assert_eq!(Ratio::new(7, 2).ceil(), 4);
    /// assert_eq!(Ratio::new(-7, 2).ceil(), -3);
    /// ```
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// `true` when the rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` when the rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` when the rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the rational is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Ratio::new(self.den, self.num)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d via a*d vs c*b; denominators are positive.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero ratio");
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Self {
        Ratio::from_integer(n)
    }
}

impl From<u64> for Ratio {
    fn from(n: u64) -> Self {
        Ratio::from_integer(n as i128)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::from_integer(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        assert_eq!(Ratio::new(4, 8), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-4, 8), Ratio::new(1, -2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn sign_normalization() {
        let r = Ratio::new(3, -7);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 7);
        let r = Ratio::new(-3, -7);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 7);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(2, 3) < Ratio::new(3, 4));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(2, 4).cmp(&Ratio::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Ratio::new(9, 4).floor(), 2);
        assert_eq!(Ratio::new(9, 4).ceil(), 3);
        assert_eq!(Ratio::new(8, 4).floor(), 2);
        assert_eq!(Ratio::new(8, 4).ceil(), 2);
        assert_eq!(Ratio::new(-9, 4).floor(), -3);
        assert_eq!(Ratio::new(-9, 4).ceil(), -2);
    }

    #[test]
    fn min_max_abs_recip() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(2, 3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Ratio::new(-5, 3).abs(), Ratio::new(5, 3));
        assert_eq!(Ratio::new(2, 5).recip(), Ratio::new(5, 2));
        assert_eq!(Ratio::new(-2, 5).recip(), Ratio::new(-5, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(6, 3).to_string(), "2");
        assert_eq!(Ratio::new(5, 3).to_string(), "5/3");
        assert_eq!(format!("{:?}", Ratio::new(6, 3)), "2/1");
    }

    #[test]
    fn integer_predicates() {
        assert!(Ratio::new(4, 2).is_integer());
        assert!(!Ratio::new(5, 2).is_integer());
        assert!(Ratio::new(1, 9).is_positive());
        assert!(Ratio::new(-1, 9).is_negative());
        assert!(Ratio::ZERO.is_zero());
    }

    #[test]
    fn conversions() {
        assert_eq!(Ratio::from(3i64), Ratio::new(3, 1));
        assert_eq!(Ratio::from(3u64), Ratio::new(3, 1));
        assert_eq!(Ratio::from(-3i128), Ratio::new(-3, 1));
        assert_eq!(Ratio::new(1, 4).to_f64(), 0.25);
    }
}
