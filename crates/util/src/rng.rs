//! A small deterministic PRNG for the workspace (SplitMix64).
//!
//! The simulators only need *seeded, reproducible, statistically decent*
//! randomness — message delays, workload jitter, shuffles — not
//! cryptographic strength. Carrying an external `rand` dependency for that
//! broke hermetic (offline) builds, so this module provides the few
//! primitives the workspace actually uses with the same call shapes:
//! [`Rng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`Rng::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: the sequence produced by a given seed is part of
//! the workspace's reproducibility guarantees (seeded experiments and
//! golden tests depend on it), so the constants below must not change.
//!
//! # Examples
//!
//! ```
//! use cmvrp_util::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0..100u64), b.gen_range(0..100u64));
//! ```

use std::ops::{Bound, RangeBounds};

/// A seeded SplitMix64 generator.
///
/// SplitMix64 (Steele, Lea & Flood, 2014) passes BigCrush, has a full
/// 2^64 period, and is two multiplies and three xor-shifts per output —
/// ideal for a simulation workhorse with zero dependencies.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The current internal state, for checkpointing.
    ///
    /// Unlike a seed, the state has already advanced past every output
    /// drawn so far; pair with [`Rng::from_state`] to resume the exact
    /// sequence mid-stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured with [`Rng::state`].
    ///
    /// The restored generator continues the original sequence from the
    /// next output onward. (For SplitMix64 the state happens to have the
    /// same representation as a seed, but the two are semantically
    /// different: a seed names a sequence, a state names a position.)
    pub fn from_state(state: u64) -> Self {
        Rng { state }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (any integer range form, e.g. `0..n`
    /// or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() + 1,
            Bound::Unbounded => panic!("gen_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_i128(),
            Bound::Excluded(&v) => v.to_i128() - 1,
            Bound::Unbounded => panic!("gen_range requires an upper bound"),
        };
        assert!(lo <= hi, "empty range in gen_range");
        let span = (hi - lo + 1) as u128;
        // Lemire-style scaling: high 64 bits of a 64x64->128 product. The
        // bias is < span/2^64, irrelevant for simulation workloads.
        let scaled = ((self.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
        T::from_i128(lo + scaled)
    }

    /// A biased coin: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        self.next_f64() < p
    }

    /// Uniformly shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Widens to `i128` for uniform span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back from `i128` (the value is always in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i32, i64, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_singleton() {
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.gen_range(7..=7u64), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u64);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Rng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        let _ = Rng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut a = Rng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
