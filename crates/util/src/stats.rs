//! Summary statistics for the experiment harness.

/// Summary statistics over a sample of `f64` observations.
///
/// # Examples
///
/// ```
/// use cmvrp_util::Summary;
/// let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { values: Vec::new() }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0 for an empty sample.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum; +inf for an empty sample.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum; -inf for an empty sample.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sample standard deviation (n-1 denominator); 0 for fewer than two
    /// observations.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (0..=100) by nearest-rank on the sorted sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `p` is outside `0..=100`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "percentile of empty sample");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn percentiles() {
        let s = Summary::from_iter((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(50.0), 51.0); // nearest rank on 0-indexed span
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        Summary::new().percentile(50.0);
    }

    #[test]
    fn extend_and_push() {
        let mut s = Summary::new();
        s.push(1.0);
        s.extend([2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), 3.0);
    }
}
