//! Binomial coefficients.
//!
//! Used by `cmvrp-grid` for the closed-form count of lattice points in an
//! L1 ball of `Z^ℓ` (a Delannoy-type sum of binomials).

/// Computes the binomial coefficient `C(n, k)` in `u128`, returning 0 when
/// `k > n`.
///
/// # Examples
///
/// ```
/// use cmvrp_util::binomial;
/// assert_eq!(binomial(5, 2), 10);
/// assert_eq!(binomial(3, 5), 0);
/// assert_eq!(binomial(0, 0), 1);
/// ```
///
/// # Panics
///
/// Panics on intermediate overflow of `u128`, which cannot occur for the
/// small `n` used in this workspace (dimension and radius bounded by grid
/// sizes).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // Multiply then divide keeps intermediate values integral because
        // the running product is always a binomial coefficient.
        result = result
            .checked_mul((n - i) as u128)
            .expect("binomial overflow")
            / (i as u128 + 1);
    }
    result
}

/// A cached table of binomial coefficients `C(n, k)` for `n <= max_n`.
///
/// Useful when many coefficients with the same small `n` bound are needed,
/// such as when evaluating ball-size formulas across radii.
///
/// # Examples
///
/// ```
/// use cmvrp_util::Binomials;
/// let b = Binomials::new(10);
/// assert_eq!(b.get(10, 5), 252);
/// ```
#[derive(Debug, Clone)]
pub struct Binomials {
    max_n: u64,
    rows: Vec<Vec<u128>>,
}

impl Binomials {
    /// Builds the Pascal triangle up to row `max_n` inclusive.
    pub fn new(max_n: u64) -> Self {
        let mut rows: Vec<Vec<u128>> = Vec::with_capacity(max_n as usize + 1);
        for n in 0..=max_n as usize {
            let mut row = vec![1u128; n + 1];
            for k in 1..n {
                row[k] = rows[n - 1][k - 1] + rows[n - 1][k];
            }
            rows.push(row);
        }
        Binomials { max_n, rows }
    }

    /// Returns `C(n, k)`; 0 when `k > n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the `max_n` passed to [`Binomials::new`].
    pub fn get(&self, n: u64, k: u64) -> u128 {
        assert!(n <= self.max_n, "n={n} exceeds table bound {}", self.max_n);
        if k > n {
            0
        } else {
            self.rows[n as usize][k as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(1, 0), 1);
        assert_eq!(binomial(1, 1), 1);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 4), 210);
    }

    #[test]
    fn k_exceeding_n_is_zero() {
        assert_eq!(binomial(4, 9), 0);
    }

    #[test]
    fn symmetric() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn pascal_recurrence() {
        for n in 1..25u64 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn table_matches_direct() {
        let b = Binomials::new(16);
        for n in 0..=16u64 {
            for k in 0..=(n + 2) {
                assert_eq!(b.get(n, k), binomial(n, k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds table bound")]
    fn table_bound_enforced() {
        let b = Binomials::new(4);
        let _ = b.get(5, 1);
    }
}
