//! Fixed-width text tables for the experiment harness.
//!
//! The `experiments` binary in `cmvrp-bench` regenerates each of the thesis'
//! worked examples as a table of rows; this module renders them with aligned
//! columns so the output can be pasted directly into `EXPERIMENTS.md`.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use cmvrp_util::Table;
/// let mut t = Table::new(vec!["a", "bb"]);
/// t.row(vec!["1".into(), "2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("a"));
/// assert!(s.contains("bb"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..ncols {
                write!(f, " {:width$} |", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an `f64` with a sensible fixed precision for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["x", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("value"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn fmt_f64_trims_integers() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.25), "3.2500");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
    }
}
