#![warn(missing_docs)]

//! Shared utilities for the `cmvrp` workspace.
//!
//! This crate holds the small, dependency-free building blocks used across the
//! CMVRP reproduction:
//!
//! * [`Ratio`] — exact rational arithmetic over `i128`, used wherever the
//!   thesis manipulates exact LP values (e.g. the density ratios of
//!   Lemma 2.2.2 and the fixed point of Lemma 2.2.3).
//! * [`binom`] — binomial coefficients for the closed-form L1-ball counts.
//! * [`rng`] — a seeded SplitMix64 generator (the workspace takes no
//!   external dependencies, so `rand` is replaced by this shim).
//! * [`stats`] — summary statistics for the experiment harness.
//! * [`table`] — fixed-width table rendering for regenerated paper tables.
//!
//! # Examples
//!
//! ```
//! use cmvrp_util::Ratio;
//!
//! let half = Ratio::new(1, 2);
//! let third = Ratio::new(1, 3);
//! assert_eq!(half + third, Ratio::new(5, 6));
//! assert!(half > third);
//! ```

pub mod binom;
pub mod ratio;
pub mod rng;
pub mod stats;
pub mod table;

pub use binom::{binomial, Binomials};
pub use ratio::Ratio;
pub use rng::Rng;
pub use stats::Summary;
pub use table::Table;
