//! Property tests: `Ratio` behaves like the rational field (on the value
//! ranges the workspace uses).

// Property tests require the external `proptest` crate, which this
// workspace cannot fetch in its hermetic (offline) build. They are gated
// behind the off-by-default `proptest` cargo feature; enabling it also
// requires uncommenting the proptest dev-dependency (network needed).
#![cfg(feature = "proptest")]

use cmvrp_util::Ratio;
use proptest::prelude::*;

fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    // Small components keep products inside i128 across repeated ops.
    (-10_000i128..10_000, 1i128..10_000).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn addition_commutes_and_associates(
        a in ratio_strategy(),
        b in ratio_strategy(),
        c in ratio_strategy(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Ratio::ZERO, a);
    }

    #[test]
    fn multiplication_commutes_and_distributes(
        a in ratio_strategy(),
        b in ratio_strategy(),
        c in ratio_strategy(),
    ) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a * Ratio::ONE, a);
    }

    #[test]
    fn subtraction_and_negation(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!(a - a, Ratio::ZERO);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn division_inverts_multiplication(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a / b) * b, a);
        prop_assert_eq!(b * b.recip(), Ratio::ONE);
    }

    #[test]
    fn ordering_is_total_and_compatible(
        a in ratio_strategy(),
        b in ratio_strategy(),
        c in ratio_strategy(),
    ) {
        // Trichotomy.
        let cases = [a < b, a == b, a > b];
        prop_assert_eq!(cases.iter().filter(|&&x| x).count(), 1);
        // Translation invariance.
        prop_assert_eq!(a < b, a + c < b + c);
        // Scaling by a positive rational preserves order.
        if c.is_positive() {
            prop_assert_eq!(a < b, a * c < b * c);
        }
    }

    #[test]
    fn floor_ceil_bracket(a in ratio_strategy()) {
        let fl = Ratio::from_integer(a.floor());
        let ce = Ratio::from_integer(a.ceil());
        prop_assert!(fl <= a);
        prop_assert!(a <= ce);
        prop_assert!(ce - fl <= Ratio::ONE);
        prop_assert_eq!(fl == ce, a.is_integer());
    }

    #[test]
    fn reduction_is_canonical(n in -10_000i128..10_000, d in 1i128..10_000, k in 1i128..50) {
        // Scaling numerator and denominator leaves the value unchanged.
        prop_assert_eq!(Ratio::new(n, d), Ratio::new(n * k, d * k));
    }

    #[test]
    fn to_f64_is_monotone(a in ratio_strategy(), b in ratio_strategy()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn min_max_abs(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!(a.min(b) + a.max(b), a + b);
        prop_assert!(a.abs() >= a);
        prop_assert!(a.abs() >= -a);
    }
}
