//! Streaming invariant monitors over the event stream.
//!
//! The emit side of this crate records *what happened*; this module checks
//! that what happened was **legal** — that the simulated protocol actually
//! implements the thesis' algorithm, not merely that its summary statistics
//! look right. The same [`TraceChecker`] runs in two modes:
//!
//! * **online** — wrapped in a [`CheckSink`] around any other [`Sink`], it
//!   validates every event the instant it is emitted (`simulate --check`);
//! * **offline** — fed a recorded JSONL trace line by line
//!   ([`check_lines`], `cmvrp trace check`).
//!
//! ## Invariant catalog
//!
//! | invariant | what it rejects |
//! |---|---|
//! | `clock` | simulation time running backwards across events |
//! | `channel-fifo` | a delivery with no matching send, out-of-order delivery on a channel, a `delay` field inconsistent with the matched send, replies outnumbering queries on a channel pair |
//! | `ds-deficit` | Dijkstra–Scholten violations: nested computations at one initiator, non-increasing generations, completion of a computation that was never started, completion while the initiator's deficit (queries sent − reply signals returned) is nonzero, and computations still open at end of trace |
//! | `job-ledger` | job sequence numbers arriving out of order, serving a job that never arrived, double-serving |
//! | `capacity` | a vehicle's cumulative energy (service costs + relocation distances) exceeding the provisioned `W` |
//! | `crash-silence` | any activity attributed to a crashed process — sends, deliveries to it, serves, diffusion activity, watching |
//! | `replacement-liveness` | a replacement arrival with no preceding successful search; in clean traces (no crashes, no losses, no concurrent searches) a successful search whose summoned vehicle never arrives |
//! | `span` | a phase span ending before it starts |
//! | `profile` | a corrupt flight-recorder sample: negative duration, worker id outside the recorded pool, or a worker's round number failing to strictly increase |
//!
//! Monitors degrade gracefully: the deficit and reply/query checks need the
//! `kind` annotation (see [`MsgKind`]) and stay idle on traces without it;
//! the capacity monitor needs a `fleet_provisioned` event or an explicit
//! [`TraceChecker::set_capacity`].
//!
//! ## Lamport clocks
//!
//! The checker maintains a Lamport clock per process — incremented on every
//! local event and send, and set to `max(own, sender's at send) + 1` on
//! delivery — so `cmvrp trace timeline` can print a causally meaningful
//! ordering next to simulation time. The clock is *derived* by the checker;
//! it is not a trace field.
//!
//! ## Causal index
//!
//! With [`TraceChecker::record_causality`] enabled the checker additionally
//! materializes the happens-before edges it already tracks into a
//! [`CausalIndex`]: program order per process, sent→delivered channel
//! edges, arrival→serve job-ledger edges, start→completion diffusion
//! edges, and completion→replacement summons. `cmvrp trace explain` walks
//! the index backwards to print why an event happened, and every
//! [`Violation`] found while the index is live carries the chain of events
//! leading to the offending one ([`Violation::chain`]). The index stores
//! one node per trace line, so it is for offline forensics; the online
//! [`CheckSink`] leaves it off.

use crate::event::{DropReason, Event, MsgKind};
use crate::sink::{Sink, StaticSink};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Names of all invariants, in reporting order.
pub const INVARIANTS: [&str; 9] = [
    "clock",
    "channel-fifo",
    "ds-deficit",
    "job-ledger",
    "capacity",
    "crash-silence",
    "replacement-liveness",
    "span",
    "profile",
];

/// One invariant violation, tied to the 1-based trace line (or event
/// ordinal, when checking online) that triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed (one of [`INVARIANTS`]).
    pub invariant: &'static str,
    /// 1-based line/event number of the offending event; end-of-trace
    /// checks use the last observed line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub detail: String,
    /// Causal chain leading to the offending event, oldest first, as
    /// rendered `line N: {event}` entries. Populated only when the checker
    /// ran with [`TraceChecker::record_causality`]; empty otherwise.
    pub chain: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: [{}] {}",
            self.line, self.invariant, self.detail
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n  caused by:")?;
            for entry in &self.chain {
                write!(f, "\n    {entry}")?;
            }
        }
        Ok(())
    }
}

/// One event of the causal index: its trace line, its happens-before
/// predecessors, and (once known) the acting process and Lamport clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalNode {
    /// 1-based trace line of the event.
    pub line: usize,
    /// The event's wire tag (see [`Event::kind`]).
    pub kind: &'static str,
    /// The event rendered as canonical JSON.
    pub json: String,
    /// Lines of the event's direct happens-before predecessors (program
    /// order plus the cross-process edge, when one exists), ascending.
    pub preds: Vec<usize>,
    /// `(process, Lamport clock after the event)` for events attributable
    /// to one process.
    pub actor: Option<(usize, u64)>,
}

/// The happens-before graph of a trace, recorded by [`TraceChecker`] when
/// [`TraceChecker::record_causality`] is on. See the
/// [module docs](self#causal-index) for the edge catalog.
#[derive(Debug, Default, Clone)]
pub struct CausalIndex {
    /// Nodes indexed by 1-based trace line.
    nodes: Vec<Option<CausalNode>>,
    /// Last line on which each process acted (program-order edge source).
    last_line_of: Vec<Option<usize>>,
    /// Arrival line per job sequence number.
    arrival: Vec<Option<usize>>,
    /// Serve line per job sequence number.
    serve: Vec<Option<usize>>,
    /// Lines of `found=true` diffusion completions, in trace order; the
    /// n-th replacement arrival is summoned by the n-th successful search.
    found_completions: Vec<usize>,
    /// Replacement arrivals seen so far.
    cycles: usize,
}

impl CausalIndex {
    /// The node recorded at `line`, if that line carried an event.
    pub fn node(&self, line: usize) -> Option<&CausalNode> {
        self.nodes.get(line).and_then(Option::as_ref)
    }

    /// The line on which job `seq` was served.
    pub fn serve_line(&self, seq: u64) -> Option<usize> {
        self.serve.get(seq as usize).copied().flatten()
    }

    /// The line on which job `seq` arrived.
    pub fn arrival_line(&self, seq: u64) -> Option<usize> {
        self.arrival.get(seq as usize).copied().flatten()
    }

    /// The last line on which `proc` acted.
    pub fn last_line_of(&self, proc: usize) -> Option<usize> {
        self.last_line_of.get(proc).copied().flatten()
    }

    /// Walks happens-before edges backwards from `line` and returns up to
    /// `cap` of the *most recent* ancestors, ascending by line (the target
    /// itself is not included). Recency is the right truncation for an
    /// explanation: the far past is reachable by explaining an ancestor.
    pub fn chain(&self, line: usize, cap: usize) -> Vec<&CausalNode> {
        let mut heap = std::collections::BinaryHeap::new();
        let mut picked = vec![line];
        if let Some(node) = self.node(line) {
            heap.extend(node.preds.iter().copied());
        }
        while let Some(next) = heap.pop() {
            if picked.contains(&next) {
                continue;
            }
            picked.push(next);
            if picked.len() > cap {
                break;
            }
            if let Some(node) = self.node(next) {
                heap.extend(node.preds.iter().copied());
            }
        }
        picked.sort_unstable();
        picked.pop(); // the target itself (the largest line)
        picked.iter().filter_map(|&l| self.node(l)).collect()
    }

    /// Records one event. `cross` is the cross-process predecessor line
    /// (matched send, open diffusion start), resolved by the checker from
    /// state the index cannot see.
    fn record(&mut self, line: usize, ev: &Event, cross: Option<usize>) {
        let mut preds = Vec::with_capacity(2);
        if let Some(c) = cross {
            preds.push(c);
        }
        // Program-order edge, then advance the actor's last-line cursor.
        fn po(last: &mut Vec<Option<usize>>, line: usize, p: usize, preds: &mut Vec<usize>) {
            if let Some(prev) = last.get(p).copied().flatten() {
                preds.push(prev);
            }
            *grow(last, p) = Some(line);
        }
        match ev {
            Event::MsgSent { from, .. } => po(&mut self.last_line_of, line, *from, &mut preds),
            Event::MsgDelivered { to, .. } => po(&mut self.last_line_of, line, *to, &mut preds),
            Event::MsgDropped { from, reason, .. } => {
                // A loss is the sender acting; a crash-drop happens at the
                // (dead) recipient and advances no one's program order.
                if *reason == DropReason::Lost {
                    po(&mut self.last_line_of, line, *from, &mut preds);
                }
            }
            Event::JobArrived { seq, .. } => {
                *grow(&mut self.arrival, *seq as usize) = Some(line);
            }
            Event::JobServed { seq, vehicle, .. } => {
                if let Some(a) = self.arrival.get(*seq as usize).copied().flatten() {
                    preds.push(a);
                }
                *grow(&mut self.serve, *seq as usize) = Some(line);
                po(&mut self.last_line_of, line, *vehicle, &mut preds);
            }
            Event::DiffusionStarted { initiator, .. } => {
                po(&mut self.last_line_of, line, *initiator, &mut preds);
            }
            Event::DiffusionCompleted {
                initiator, found, ..
            } => {
                if *found {
                    self.found_completions.push(line);
                }
                po(&mut self.last_line_of, line, *initiator, &mut preds);
            }
            Event::ReplacementCycle { vehicle, .. } => {
                if let Some(&c) = self.found_completions.get(self.cycles) {
                    preds.push(c);
                }
                self.cycles += 1;
                po(&mut self.last_line_of, line, *vehicle, &mut preds);
            }
            Event::HeartbeatMissed { watcher, peer, .. } => {
                // The peer's silence is what the watcher observed: its last
                // act is a read-only predecessor (no cursor advance).
                if let Some(prev) = self.last_line_of.get(*peer).copied().flatten() {
                    preds.push(prev);
                }
                po(&mut self.last_line_of, line, *watcher, &mut preds);
            }
            Event::ProcessCrashed { proc, .. } => {
                po(&mut self.last_line_of, line, *proc, &mut preds);
            }
            Event::FleetProvisioned { .. }
            | Event::PhaseSpan { .. }
            | Event::RoundProfile { .. } => {}
        }
        preds.sort_unstable();
        preds.dedup();
        *grow(&mut self.nodes, line) = Some(CausalNode {
            line,
            kind: ev.kind(),
            json: ev.to_json(),
            preds,
            actor: None,
        });
    }

    fn set_actor(&mut self, line: usize, actor: usize, lamport: u64) {
        if let Some(Some(node)) = self.nodes.get_mut(line) {
            node.actor = Some((actor, lamport));
        }
    }
}

/// A cheap multiplicative hasher for the packed `(from, to)` channel keys.
/// The checker runs inline with the simulator under `simulate --check`, so
/// the default SipHash would dominate its cost.
#[derive(Debug, Default, Clone)]
struct ChannelHasher(u64);

impl Hasher for ChannelHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        // SplitMix64-style finalizer: enough avalanche for dense ids.
        let mut x = self.0 ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = x ^ (x >> 27);
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Both directions of one process pair behind a single map probe — message
/// events dominate traces, so every probe counts under `simulate --check`,
/// and a reply delivered on one direction must be compared against the
/// queries delivered on the other.
#[derive(Debug, Default, Clone)]
struct PairState {
    /// FIFO ledger of sends awaiting delivery or crash-drop, per direction.
    queue: [VecDeque<SendRecord>; 2],
    /// Query deliveries observed, per direction.
    queries: [u64; 2],
    /// Reply deliveries observed, per direction.
    replies: [u64; 2],
}

type ChannelMap = HashMap<u64, PairState, BuildHasherDefault<ChannelHasher>>;

/// Packs an unordered process pair into one map key plus the direction
/// index of `from -> to` within it.
fn pair_key(from: usize, to: usize) -> (u64, usize) {
    let (lo, hi, dir) = if from <= to {
        (from, to, 0)
    } else {
        (to, from, 1)
    };
    (((lo as u64) << 32) | hi as u64, dir)
}

/// Grows `v` with defaults so index `i` exists, and returns `&mut v[i]`.
/// Process ids and job sequence numbers are dense, so flat vectors beat
/// maps for all per-process state.
fn grow<T: Clone + Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize(i + 1, T::default());
    }
    &mut v[i]
}

/// An in-flight message ledger entry: what we knew at send time.
#[derive(Debug, Clone, Copy)]
struct SendRecord {
    t: u64,
    lamport: u64,
    line: usize,
}

/// One open diffusing computation at its initiator.
#[derive(Debug, Clone, Copy)]
struct OpenComputation {
    generation: u64,
    /// Queries sent by the initiator minus reply signals delivered to it.
    deficit: i64,
    started_line: usize,
}

/// Streaming trace validator; see the [module docs](self) for the
/// invariant catalog.
#[derive(Debug, Default)]
pub struct TraceChecker {
    line: usize,
    events: u64,
    violations: Vec<Violation>,
    /// Global simulation clock high-water mark (tick-round and wall-clock
    /// events are exempt).
    last_t: u64,
    /// Per-directed-channel FIFO ledger and query/reply delivery counters.
    channels: ChannelMap,
    /// Lamport clocks indexed by process id, derived (see module docs).
    lamport: Vec<u64>,
    /// Open computation per initiator, indexed by process id.
    open: Vec<Option<OpenComputation>>,
    open_count: usize,
    last_generation: Vec<Option<u64>>,
    /// High-water mark of concurrently open computations.
    max_open: usize,
    completions_found: u64,
    replacement_cycles: u64,
    crashed: Vec<bool>,
    any_crashed: bool,
    next_job_seq: u64,
    /// Tolerate forward gaps in arrival sequence numbers (shard-local
    /// streams see a strictly increasing but non-contiguous slice of the
    /// globally pre-assigned numbers).
    seq_gaps_ok: bool,
    arrived: Vec<bool>,
    served: Vec<bool>,
    energy: Vec<u64>,
    capacity: Option<u64>,
    vehicles: Option<u64>,
    saw_kinds: bool,
    saw_loss: bool,
    /// Last `round_profile` round seen per worker id (a map, not a grown
    /// vector: worker ids come straight off the wire and a corrupt sample
    /// must not drive an allocation).
    profile_last_round: std::collections::BTreeMap<u64, u64>,
    /// Happens-before graph, recorded only when
    /// [`TraceChecker::record_causality`] was called (O(trace) memory).
    causal: Option<CausalIndex>,
}

impl TraceChecker {
    /// Creates a checker with no events observed.
    pub fn new() -> Self {
        TraceChecker::default()
    }

    /// Provides the battery capacity `W` for the energy monitor when the
    /// trace predates the `fleet_provisioned` event (a later event wins).
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = Some(capacity);
    }

    /// Relaxes the job ledger to accept forward gaps in arrival sequence
    /// numbers, keeping every other ledger check (monotone arrivals,
    /// serve-after-arrive, no double serving).
    ///
    /// The sharded engine pre-assigns global sequence numbers across all
    /// shards, so each shard-local stream sees a strictly increasing but
    /// non-contiguous slice of them; contiguity of the full sequence is
    /// re-established (and checked) at the merge.
    pub fn allow_seq_gaps(&mut self) {
        self.seq_gaps_ok = true;
    }

    /// Turns on the causal index: every subsequent event is recorded as a
    /// [`CausalNode`], and violations gain their [`Violation::chain`].
    /// Costs O(trace) memory — meant for offline forensics, not the
    /// online [`CheckSink`].
    pub fn record_causality(&mut self) {
        if self.causal.is_none() {
            self.causal = Some(CausalIndex::default());
        }
    }

    /// The recorded causal index, when [`TraceChecker::record_causality`]
    /// is on.
    pub fn causal_index(&self) -> Option<&CausalIndex> {
        self.causal.as_ref()
    }

    /// Consumes the checker, yielding the causal index (if recorded).
    pub fn into_causal_index(self) -> Option<CausalIndex> {
        self.causal
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Violations found so far (finish checks only appear after
    /// [`TraceChecker::finish`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no violation has been found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The current Lamport clock of `proc` (0 if it never acted).
    pub fn lamport(&self, proc: usize) -> u64 {
        self.lamport.get(proc).copied().unwrap_or(0)
    }

    /// Names of the monitors that could actually run on what was seen so
    /// far (the kind-dependent ones need annotated messages, the capacity
    /// one needs `W`).
    pub fn active_invariants(&self) -> Vec<&'static str> {
        INVARIANTS
            .iter()
            .copied()
            .filter(|inv| match *inv {
                "ds-deficit" => self.saw_kinds,
                "capacity" => self.capacity.is_some(),
                _ => true,
            })
            .collect()
    }

    fn report(&mut self, invariant: &'static str, line: usize, detail: String) {
        // The chain is attached lazily (in `finish`): at this point the
        // offending event's own node may not be recorded yet.
        self.violations.push(Violation {
            invariant,
            line,
            detail,
            chain: Vec::new(),
        });
    }

    /// The mutable pair state covering `from -> to` (created on first
    /// touch) and the direction index of that channel within it.
    #[inline]
    fn channel(&mut self, from: usize, to: usize) -> (&mut PairState, usize) {
        let (key, dir) = pair_key(from, to);
        (self.channels.entry(key).or_default(), dir)
    }

    fn tick_lamport(&mut self, proc: usize) -> u64 {
        let c = grow(&mut self.lamport, proc);
        *c += 1;
        *c
    }

    fn is_crashed(&self, proc: usize) -> bool {
        self.crashed.get(proc).copied().unwrap_or(false)
    }

    /// Observes the next event, auto-numbering lines from 1 (online mode).
    /// Returns the acting process and its Lamport clock after the event,
    /// when the event is attributable to one process.
    #[inline]
    pub fn observe(&mut self, ev: &Event) -> Option<(usize, u64)> {
        let line = self.line + 1;
        self.observe_at(line, ev)
    }

    /// Observes one event as trace line `line` (1-based, must not
    /// decrease). Returns `(actor, lamport clock after the event)` for
    /// events attributable to one process.
    pub fn observe_at(&mut self, line: usize, ev: &Event) -> Option<(usize, u64)> {
        self.line = line;
        self.events += 1;
        self.check_crash_silence(line, ev);
        self.causal_observe(line, ev);
        let acted = match ev {
            Event::MsgSent { t, from, to, kind } => {
                self.clock(line, *t);
                if kind.is_some() {
                    self.saw_kinds = true;
                }
                let lamport = self.tick_lamport(*from);
                let (pair, dir) = self.channel(*from, *to);
                pair.queue[dir].push_back(SendRecord {
                    t: *t,
                    lamport,
                    line,
                });
                if *kind == Some(MsgKind::Query) && self.open_count > 0 {
                    if let Some(Some(open)) = self.open.get_mut(*from) {
                        open.deficit += 1;
                    }
                }
                Some((*from, lamport))
            }
            Event::MsgDelivered {
                t,
                from,
                to,
                delay,
                kind,
            } => {
                self.clock(line, *t);
                if kind.is_some() {
                    self.saw_kinds = true;
                }
                let (sent, replies, queries) = {
                    let (pair, dir) = self.channel(*from, *to);
                    let sent = pair.queue[dir].pop_front();
                    let (replies, queries) = match kind {
                        Some(MsgKind::Query) => {
                            pair.queries[dir] += 1;
                            (0, 0)
                        }
                        Some(MsgKind::Reply) => {
                            pair.replies[dir] += 1;
                            // The queries this reply answers flowed the
                            // other way on the same pair.
                            (pair.replies[dir], pair.queries[dir ^ 1])
                        }
                        _ => (0, 0),
                    };
                    (sent, replies, queries)
                };
                let lamport = match sent {
                    Some(rec) => {
                        if rec.t + *delay != *t {
                            self.report(
                                "channel-fifo",
                                line,
                                format!(
                                    "delivery {from}->{to} at t={t} claims delay {delay} but \
                                     matches the send at t={} (line {}): FIFO order broken",
                                    rec.t, rec.line
                                ),
                            );
                        }
                        let c = grow(&mut self.lamport, *to);
                        *c = (*c).max(rec.lamport) + 1;
                        *c
                    }
                    None => {
                        self.report(
                            "channel-fifo",
                            line,
                            format!("delivery {from}->{to} at t={t} has no matching send"),
                        );
                        self.tick_lamport(*to)
                    }
                };
                if *kind == Some(MsgKind::Reply) {
                    if replies > queries {
                        self.report(
                            "channel-fifo",
                            line,
                            format!(
                                "reply {from}->{to} outnumbers queries {to}->{from} \
                                 ({replies} replies vs {queries} queries)"
                            ),
                        );
                    }
                    if let Some(Some(open)) = self.open.get_mut(*to) {
                        open.deficit -= 1;
                    }
                }
                Some((*to, lamport))
            }
            Event::MsgDropped {
                t,
                from,
                to,
                reason,
                ..
            } => {
                self.clock(line, *t);
                match reason {
                    // Lost in transit is decided at send time: no msg_sent was
                    // emitted, so there is nothing to match — but the sender did
                    // act, so its clock ticks.
                    DropReason::Lost => {
                        self.saw_loss = true;
                        let lamport = self.tick_lamport(*from);
                        Some((*from, lamport))
                    }
                    // Dropped at the crashed recipient's door: consumes the
                    // oldest in-flight send on the channel.
                    DropReason::RecipientCrashed => {
                        let (pair, dir) = self.channel(*from, *to);
                        if pair.queue[dir].pop_front().is_none() {
                            self.report(
                                "channel-fifo",
                                line,
                                format!("crash-drop {from}->{to} has no matching send"),
                            );
                        }
                        None
                    }
                }
            }
            Event::JobArrived { t, seq, .. } => {
                self.clock(line, *t);
                if self.seq_gaps_ok {
                    if *seq < self.next_job_seq {
                        self.report(
                            "job-ledger",
                            line,
                            format!(
                                "job seq {seq} arrived out of order (next must be >= {})",
                                self.next_job_seq
                            ),
                        );
                    }
                } else if *seq != self.next_job_seq {
                    self.report(
                        "job-ledger",
                        line,
                        format!("job seq {seq} arrived, expected seq {}", self.next_job_seq),
                    );
                }
                *grow(&mut self.arrived, *seq as usize) = true;
                self.next_job_seq = self.next_job_seq.max(*seq + 1);
                None
            }
            Event::JobServed {
                t,
                seq,
                vehicle,
                cost,
            } => {
                self.clock(line, *t);
                if !self.arrived.get(*seq as usize).copied().unwrap_or(false) {
                    self.report(
                        "job-ledger",
                        line,
                        format!("job seq {seq} served but never arrived"),
                    );
                } else {
                    let done = std::mem::replace(grow(&mut self.served, *seq as usize), true);
                    if done {
                        self.report("job-ledger", line, format!("job seq {seq} served twice"));
                    }
                }
                self.charge(line, *vehicle, *cost, "service");
                let lamport = self.tick_lamport(*vehicle);
                Some((*vehicle, lamport))
            }
            Event::DiffusionStarted {
                t,
                initiator,
                generation,
            } => {
                self.clock(line, *t);
                if let Some(Some(open)) = self.open.get(*initiator) {
                    self.report(
                        "ds-deficit",
                        line,
                        format!(
                            "initiator {initiator} started generation {generation} while \
                             generation {} (line {}) is still open",
                            open.generation, open.started_line
                        ),
                    );
                }
                if let Some(Some(last)) = self.last_generation.get(*initiator) {
                    if *generation <= *last {
                        let last = *last;
                        self.report(
                            "ds-deficit",
                            line,
                            format!(
                                "initiator {initiator} generation {generation} not above \
                                 previous generation {last}"
                            ),
                        );
                    }
                }
                *grow(&mut self.last_generation, *initiator) = Some(*generation);
                let slot = grow(&mut self.open, *initiator);
                if slot.is_none() {
                    self.open_count += 1;
                }
                *slot = Some(OpenComputation {
                    generation: *generation,
                    deficit: 0,
                    started_line: line,
                });
                self.max_open = self.max_open.max(self.open_count);
                let lamport = self.tick_lamport(*initiator);
                Some((*initiator, lamport))
            }
            Event::DiffusionCompleted {
                t,
                initiator,
                generation,
                found,
            } => {
                self.clock(line, *t);
                match grow(&mut self.open, *initiator).take() {
                    Some(open) if open.generation == *generation => {
                        self.open_count -= 1;
                        if self.saw_kinds && open.deficit != 0 {
                            self.report(
                                "ds-deficit",
                                line,
                                format!(
                                    "initiator {initiator} completed generation {generation} \
                                     with deficit {} (queries sent minus reply signals \
                                     returned must be 0 at termination)",
                                    open.deficit
                                ),
                            );
                        }
                    }
                    Some(open) => {
                        self.open_count -= 1;
                        self.report(
                            "ds-deficit",
                            line,
                            format!(
                                "initiator {initiator} completed generation {generation} but \
                                 generation {} is the one open",
                                open.generation
                            ),
                        );
                    }
                    None => {
                        self.report(
                            "ds-deficit",
                            line,
                            format!(
                                "initiator {initiator} completed generation {generation} \
                                 without a matching start"
                            ),
                        );
                    }
                }
                if *found {
                    self.completions_found += 1;
                }
                let lamport = self.tick_lamport(*initiator);
                Some((*initiator, lamport))
            }
            Event::ReplacementCycle {
                t, vehicle, dist, ..
            } => {
                self.clock(line, *t);
                self.replacement_cycles += 1;
                if self.replacement_cycles > self.completions_found {
                    self.report(
                        "replacement-liveness",
                        line,
                        format!(
                            "vehicle {vehicle} arrived as replacement #{} but only {} \
                             successful searches completed",
                            self.replacement_cycles, self.completions_found
                        ),
                    );
                }
                self.charge(line, *vehicle, *dist, "relocation");
                let lamport = self.tick_lamport(*vehicle);
                Some((*vehicle, lamport))
            }
            Event::HeartbeatMissed { watcher, .. } => {
                let lamport = self.tick_lamport(*watcher);
                Some((*watcher, lamport))
            }
            Event::FleetProvisioned {
                t,
                vehicles,
                capacity,
            } => {
                self.clock(line, *t);
                self.vehicles = Some(*vehicles);
                self.capacity = Some(*capacity);
                None
            }
            Event::ProcessCrashed { t, proc } => {
                self.clock(line, *t);
                *grow(&mut self.crashed, *proc) = true;
                self.any_crashed = true;
                Some((*proc, self.lamport(*proc)))
            }
            Event::PhaseSpan {
                name,
                start_ns,
                end_ns,
            } => {
                if end_ns < start_ns {
                    self.report(
                        "span",
                        line,
                        format!("span {name:?} ends at {end_ns} before it starts at {start_ns}"),
                    );
                }
                None
            }
            Event::RoundProfile {
                round,
                worker,
                workers,
                busy_ns,
                barrier_wait_ns,
                merge_ns,
                sink_ns,
                ..
            } => {
                for (name, v) in [
                    ("busy_ns", *busy_ns),
                    ("barrier_wait_ns", *barrier_wait_ns),
                    ("merge_ns", *merge_ns),
                    ("sink_ns", *sink_ns),
                ] {
                    if v < 0 {
                        self.report(
                            "profile",
                            line,
                            format!("negative {name} ({v}) in round {round} worker {worker}"),
                        );
                    }
                }
                if *workers == 0 {
                    self.report(
                        "profile",
                        line,
                        format!("round {round} sample claims a zero-worker pool"),
                    );
                } else if *worker >= *workers {
                    self.report(
                        "profile",
                        line,
                        format!(
                            "worker {worker} out of range for a pool of {workers} \
                             in round {round}"
                        ),
                    );
                }
                if let Some(&prev) = self.profile_last_round.get(worker) {
                    if *round <= prev {
                        self.report(
                            "profile",
                            line,
                            format!(
                                "worker {worker} round is not strictly increasing: \
                                 {round} after {prev}"
                            ),
                        );
                    }
                }
                self.profile_last_round.insert(*worker, *round);
                None
            }
        };
        if let (Some(ix), Some((actor, lamport))) = (self.causal.as_mut(), acted) {
            ix.set_actor(line, actor, lamport);
        }
        acted
    }

    /// Records `ev` into the causal index (when recording), resolving the
    /// cross-process predecessor edge from checker state *before* the
    /// monitors below consume it (the matched send is popped, the open
    /// diffusion slot is taken).
    fn causal_observe(&mut self, line: usize, ev: &Event) {
        if self.causal.is_none() {
            return;
        }
        let cross = match ev {
            Event::MsgDelivered { from, to, .. }
            | Event::MsgDropped {
                from,
                to,
                reason: DropReason::RecipientCrashed,
                ..
            } => {
                let (pair, dir) = self.channel(*from, *to);
                pair.queue[dir].front().map(|r| r.line)
            }
            Event::DiffusionCompleted { initiator, .. } => self
                .open
                .get(*initiator)
                .and_then(|slot| slot.as_ref())
                .map(|open| open.started_line),
            _ => None,
        };
        self.causal
            .as_mut()
            .expect("checked above")
            .record(line, ev, cross);
    }

    fn charge(&mut self, line: usize, vehicle: usize, amount: u64, what: &str) {
        if let Some(limit) = self.vehicles {
            if vehicle as u64 >= limit {
                self.report(
                    "capacity",
                    line,
                    format!("vehicle {vehicle} outside the provisioned fleet of {limit}"),
                );
            }
        }
        let used = grow(&mut self.energy, vehicle);
        *used += amount;
        let used = *used;
        if let Some(w) = self.capacity {
            if used > w {
                self.report(
                    "capacity",
                    line,
                    format!(
                        "vehicle {vehicle} spent {used} > capacity {w} after {what} of {amount}"
                    ),
                );
            }
        }
    }

    /// Global simulation-time monotonicity, called from every event arm
    /// that carries a simulation timestamp. Heartbeat misses are stamped
    /// in watcher-local tick rounds and spans in wall-clock nanoseconds,
    /// so both are exempt (their arms never call this).
    #[inline]
    fn clock(&mut self, line: usize, t: u64) {
        if t < self.last_t {
            self.report(
                "clock",
                line,
                format!(
                    "simulation time ran backwards: t={t} after t={}",
                    self.last_t
                ),
            );
        }
        self.last_t = self.last_t.max(t);
    }

    /// A crashed process must neither act nor be delivered to.
    fn check_crash_silence(&mut self, line: usize, ev: &Event) {
        if !self.any_crashed {
            return;
        }
        let offender: Option<(usize, &str)> = match ev {
            Event::MsgSent { from, .. } if self.is_crashed(*from) => {
                Some((*from, "sent a message"))
            }
            Event::MsgDelivered { to, .. } if self.is_crashed(*to) => {
                Some((*to, "was delivered a message"))
            }
            Event::JobServed { vehicle, .. } if self.is_crashed(*vehicle) => {
                Some((*vehicle, "served a job"))
            }
            Event::DiffusionStarted { initiator, .. } if self.is_crashed(*initiator) => {
                Some((*initiator, "started a diffusion"))
            }
            Event::DiffusionCompleted { initiator, .. } if self.is_crashed(*initiator) => {
                Some((*initiator, "completed a diffusion"))
            }
            Event::ReplacementCycle { vehicle, .. } if self.is_crashed(*vehicle) => {
                Some((*vehicle, "arrived as a replacement"))
            }
            Event::HeartbeatMissed { watcher, .. } if self.is_crashed(*watcher) => {
                Some((*watcher, "acted as a watcher"))
            }
            _ => None,
        };
        if let Some((proc, did)) = offender {
            self.report(
                "crash-silence",
                line,
                format!("crashed process {proc} {did}"),
            );
        }
    }

    /// End-of-trace checks: Dijkstra–Scholten termination and replacement
    /// liveness. Call exactly once, after the last event.
    pub fn finish(&mut self) {
        let line = self.line;
        let open: Vec<(usize, OpenComputation)> = self
            .open
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.take().map(|c| (i, c)))
            .collect();
        self.open_count = 0;
        for (initiator, comp) in open {
            self.report(
                "ds-deficit",
                comp.started_line,
                format!(
                    "computation of initiator {initiator} generation {} never terminated \
                     (deficit {} at end of trace)",
                    comp.generation, comp.deficit
                ),
            );
        }
        // In a clean trace — nothing crashed, nothing lost, searches never
        // overlapped — every successful search's move order is delivered, so
        // a summoned vehicle that never arrives is a liveness bug. Crashes,
        // losses, or concurrent searches (which can claim the same idle
        // vehicle twice) legitimately strand a search, so only the
        // arrival-without-search direction is checked there (streamed).
        let clean = !self.any_crashed && !self.saw_loss && self.max_open <= 1;
        if clean && self.replacement_cycles < self.completions_found {
            let (cycles, found) = (self.replacement_cycles, self.completions_found);
            self.report(
                "replacement-liveness",
                line,
                format!(
                    "{found} successful searches but only {cycles} replacement arrivals \
                     in a loss-free, crash-free trace"
                ),
            );
        }
        // With the causal index live, attach to every violation the chain
        // of events leading to the offending one (done here, not at report
        // time: the offender's own node is recorded after the monitors
        // run, and finish-time violations point at earlier lines anyway).
        if let Some(ix) = &self.causal {
            const CHAIN_CAP: usize = 8;
            for v in &mut self.violations {
                if v.chain.is_empty() {
                    v.chain = ix
                        .chain(v.line, CHAIN_CAP)
                        .iter()
                        .map(|n| format!("line {}: {}", n.line, n.json))
                        .collect();
                }
            }
        }
    }
}

/// A [`Sink`] wrapper that validates every event on its way to `inner`.
///
/// ```
/// use cmvrp_obs::{CheckSink, Event, NullSink, Sink};
///
/// let mut sink = CheckSink::new(NullSink);
/// sink.record(&Event::JobArrived { t: 1, seq: 0, pos: vec![0, 0] });
/// sink.record(&Event::JobServed { t: 1, seq: 0, vehicle: 3, cost: 1 });
/// let (mut checker, _inner) = sink.into_parts();
/// checker.finish();
/// assert!(checker.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct CheckSink<S: Sink> {
    inner: S,
    checker: TraceChecker,
}

impl<S: Sink> CheckSink<S> {
    /// Wraps `inner`, validating everything recorded through it.
    pub fn new(inner: S) -> Self {
        CheckSink {
            inner,
            checker: TraceChecker::new(),
        }
    }

    /// The checker's current state.
    pub fn checker(&self) -> &TraceChecker {
        &self.checker
    }

    /// Mutable access to the checker — for configuring it before a run
    /// ([`TraceChecker::set_capacity`], [`TraceChecker::allow_seq_gaps`])
    /// or finishing it in place.
    pub fn checker_mut(&mut self) -> &mut TraceChecker {
        &mut self.checker
    }

    /// Mutable access to the wrapped sink (e.g. to drain a buffering
    /// inner sink mid-run without disturbing the checker).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Splits into the checker and the wrapped sink. Call
    /// [`TraceChecker::finish`] on the checker to run end-of-trace checks.
    pub fn into_parts(self) -> (TraceChecker, S) {
        (self.checker, self.inner)
    }
}

impl<S: Sink> Sink for CheckSink<S> {
    fn record(&mut self, event: &Event) {
        self.checker.observe(event);
        self.inner.record(event);
    }

    fn flush_events(&mut self) {
        self.inner.flush_events();
    }

    // Enabled even over a NullSink: the point is the checking.
    fn is_enabled(&self) -> bool {
        true
    }
}

impl<S: Sink> StaticSink for CheckSink<S> {}

/// Merge-time cross-shard monitors.
///
/// The sharded engine runs a full [`TraceChecker`] inside every shard (via
/// a per-shard [`CheckSink`]), which covers the shard-local invariants:
/// energy, channel FIFO/causality, DS deficits, crash silence, spans, the
/// per-shard job ledger, and the per-shard clock. Two properties are only
/// visible on the canonical *merged* stream, and this checker validates
/// exactly those as the merge streams by:
///
/// * **`clock`** — global simulation time never runs backwards across
///   shards (heartbeat and span events are exempt, as in the full
///   checker);
/// * **`job-ledger`** — the globally pre-assigned arrival sequence numbers
///   come out of the merge contiguous: 0, 1, 2, … (each shard alone only
///   certifies its increasing slice).
///
/// Violation lines are 1-based ordinals in the merged stream, so they
/// agree with `trace check` line numbers on the written trace.
#[derive(Debug, Default)]
pub struct MergeChecker {
    events: u64,
    last_t: u64,
    next_job_seq: u64,
    violations: Vec<Violation>,
}

impl MergeChecker {
    /// Creates a checker with no events observed.
    pub fn new() -> Self {
        MergeChecker::default()
    }

    /// Seeds the checker to continue a stream that resumed from a
    /// checkpoint: `events` merged events were already emitted (keeps
    /// violation line numbers global), simulation time had reached
    /// `last_t`, and `next_job_seq` arrivals were already released. The
    /// resumed tail is then validated to *stitch* — its first event may
    /// not run time backwards nor skip or repeat an arrival sequence
    /// number — which is exactly the cross-run half of the
    /// resume-equivalence invariant.
    pub fn resume_at(&mut self, events: u64, last_t: u64, next_job_seq: u64) {
        assert!(
            self.events == 0 && self.violations.is_empty(),
            "resume_at on a checker that already observed events"
        );
        self.events = events;
        self.last_t = last_t;
        self.next_job_seq = next_job_seq;
    }

    /// Observes the next event of the merged stream.
    pub fn observe(&mut self, ev: &Event) {
        self.events += 1;
        let line = self.events as usize;
        if let Some(t) = ev.time() {
            if t < self.last_t {
                self.violations.push(Violation {
                    invariant: "clock",
                    line,
                    detail: format!(
                        "merged simulation time ran backwards: t={t} after t={}",
                        self.last_t
                    ),
                    chain: Vec::new(),
                });
            }
            self.last_t = self.last_t.max(t);
        }
        if let Event::JobArrived { seq, .. } = ev {
            if *seq != self.next_job_seq {
                self.violations.push(Violation {
                    invariant: "job-ledger",
                    line,
                    detail: format!(
                        "merged stream: job seq {seq} arrived, expected seq {}",
                        self.next_job_seq
                    ),
                    chain: Vec::new(),
                });
            }
            self.next_job_seq = self.next_job_seq.max(*seq + 1);
        }
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no violation has been found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Consumes the checker, yielding its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }
}

/// Outcome of an offline [`check_lines`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Events checked (blank lines excluded).
    pub events: u64,
    /// All violations, including end-of-trace checks.
    pub violations: Vec<Violation>,
    /// The monitors that could run on this trace.
    pub active: Vec<&'static str>,
}

impl CheckReport {
    /// Whether the trace satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a whole JSONL trace; blank lines are skipped but still counted
/// for line numbering. `capacity` seeds the energy monitor for traces
/// without a `fleet_provisioned` event.
///
/// # Errors
///
/// Returns `(1-based line number, parse error)` for the first malformed
/// line — malformed input is a parse failure, not a violation.
pub fn check_lines<'a, I>(lines: I, capacity: Option<u64>) -> Result<CheckReport, (usize, String)>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut checker = TraceChecker::new();
    // Offline checking is forensics: record the causal index so every
    // violation carries the chain of events that led to it.
    checker.record_causality();
    if let Some(w) = capacity {
        checker.set_capacity(w);
    }
    for (i, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::from_json(line).map_err(|e| (i + 1, e))?;
        checker.observe_at(i + 1, &ev);
    }
    checker.finish();
    let active = checker.active_invariants();
    Ok(CheckReport {
        events: checker.events(),
        violations: checker.violations().to_vec(),
        active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(t: u64, from: usize, to: usize, kind: MsgKind) -> Event {
        Event::MsgSent {
            t,
            from,
            to,
            kind: Some(kind),
        }
    }

    fn delivered(t: u64, from: usize, to: usize, delay: u64, kind: MsgKind) -> Event {
        Event::MsgDelivered {
            t,
            from,
            to,
            delay,
            kind: Some(kind),
        }
    }

    /// A minimal legal trace: fleet of 3, one job served, one full
    /// replacement search (0 queries 1, 1 claims, reply returns, 1 is
    /// summoned and arrives).
    fn valid_trace() -> Vec<Event> {
        vec![
            Event::FleetProvisioned {
                t: 0,
                vehicles: 3,
                capacity: 10,
            },
            Event::JobArrived {
                t: 1,
                seq: 0,
                pos: vec![0, 0],
            },
            Event::JobServed {
                t: 1,
                seq: 0,
                vehicle: 0,
                cost: 2,
            },
            Event::DiffusionStarted {
                t: 1,
                initiator: 0,
                generation: 1,
            },
            sent(1, 0, 1, MsgKind::Query),
            delivered(3, 0, 1, 2, MsgKind::Query),
            sent(3, 1, 0, MsgKind::Reply),
            delivered(5, 1, 0, 2, MsgKind::Reply),
            Event::DiffusionCompleted {
                t: 5,
                initiator: 0,
                generation: 1,
                found: true,
            },
            sent(5, 0, 1, MsgKind::Move),
            delivered(6, 0, 1, 1, MsgKind::Move),
            Event::ReplacementCycle {
                t: 6,
                vehicle: 1,
                dest: vec![0, 0],
                dist: 2,
            },
        ]
    }

    fn check(events: &[Event]) -> CheckReport {
        let lines: Vec<String> = events.iter().map(Event::to_json).collect();
        check_lines(lines.iter().map(String::as_str), None).unwrap()
    }

    #[test]
    fn valid_trace_is_clean() {
        let report = check(&valid_trace());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.events, 12);
        assert_eq!(report.active, INVARIANTS.to_vec());
    }

    #[test]
    fn online_check_sink_matches_offline() {
        let mut sink = CheckSink::new(crate::sink::NullSink);
        for ev in valid_trace() {
            sink.record(&ev);
        }
        let (mut checker, _) = sink.into_parts();
        checker.finish();
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert_eq!(checker.events(), 12);
    }

    #[test]
    fn lamport_clocks_respect_causality() {
        let mut checker = TraceChecker::new();
        let mut clock_at_send = 0;
        for ev in valid_trace() {
            let meta = checker.observe(&ev);
            if let Event::MsgSent { from: 0, .. } = ev {
                clock_at_send = meta.unwrap().1;
            }
            if let Event::MsgDelivered { to, .. } = ev {
                let (actor, clock) = meta.unwrap();
                assert_eq!(actor, to);
                assert!(clock > clock_at_send, "delivery must follow its send");
            }
        }
        assert!(checker.lamport(0) > 0);
        assert!(checker.lamport(2) == 0, "process 2 never acted");
    }

    #[test]
    fn clock_regression_caught() {
        let mut evs = valid_trace();
        if let Event::ReplacementCycle { t, .. } = &mut evs[11] {
            *t = 2; // before the completion at t=5
        }
        let report = check(&evs);
        assert!(report.violations.iter().any(|v| v.invariant == "clock"));
    }

    #[test]
    fn span_inversion_caught() {
        let report = check(&[Event::PhaseSpan {
            name: "x".into(),
            start_ns: 10,
            end_ns: 3,
        }]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "span");
        assert_eq!(report.violations[0].line, 1);
    }

    fn profile(round: u64, worker: u64, workers: u64, busy_ns: i64) -> Event {
        Event::RoundProfile {
            round,
            worker,
            workers,
            busy_ns,
            barrier_wait_ns: 0,
            merge_ns: 0,
            sink_ns: 0,
            events: 1,
            steals: 0,
        }
    }

    #[test]
    fn clean_profile_stream_accepted() {
        let report = check(&[
            profile(1, 0, 2, 10),
            profile(1, 1, 2, 12),
            profile(2, 0, 2, 9),
            profile(2, 1, 2, 11),
        ]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.active.contains(&"profile"));
    }

    #[test]
    fn negative_profile_duration_caught() {
        let report = check(&[profile(1, 0, 1, -7)]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "profile");
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn profile_worker_out_of_range_caught() {
        let report = check(&[profile(1, 2, 2, 5)]);
        assert!(report.violations.iter().any(|v| v.invariant == "profile"));
        let report = check(&[profile(1, 0, 0, 5)]);
        assert!(report.violations.iter().any(|v| v.invariant == "profile"));
    }

    #[test]
    fn profile_round_regression_caught() {
        // Per-worker rounds must strictly increase; other workers'
        // interleaved samples must not trip it.
        let report = check(&[
            profile(2, 0, 2, 5),
            profile(2, 1, 2, 5),
            profile(2, 0, 2, 5),
        ]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "profile");
        assert_eq!(report.violations[0].line, 3);
    }

    #[test]
    fn capacity_from_explicit_override() {
        let events = [Event::JobServed {
            t: 1,
            seq: 0,
            vehicle: 0,
            cost: 50,
        }];
        let lines: Vec<String> = events.iter().map(Event::to_json).collect();
        // Without W the monitor is idle; seq-never-arrived still fires.
        let lax = check_lines(lines.iter().map(String::as_str), None).unwrap();
        assert!(lax.violations.iter().all(|v| v.invariant != "capacity"));
        assert!(!lax.active.contains(&"capacity"));
        let strict = check_lines(lines.iter().map(String::as_str), Some(10)).unwrap();
        assert!(strict.violations.iter().any(|v| v.invariant == "capacity"));
    }

    #[test]
    fn kindless_traces_skip_deficit_monitor() {
        // Same trace with the kind annotations stripped: the deficit
        // monitor must stay idle rather than misfire.
        let evs: Vec<Event> = valid_trace()
            .into_iter()
            .map(|ev| match ev {
                Event::MsgSent { t, from, to, .. } => Event::MsgSent {
                    t,
                    from,
                    to,
                    kind: None,
                },
                Event::MsgDelivered {
                    t, from, to, delay, ..
                } => Event::MsgDelivered {
                    t,
                    from,
                    to,
                    delay,
                    kind: None,
                },
                other => other,
            })
            .collect();
        let report = check(&evs);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(!report.active.contains(&"ds-deficit"));
    }

    fn arrived(t: u64, seq: u64) -> Event {
        Event::JobArrived {
            t,
            seq,
            pos: vec![0, 0],
        }
    }

    #[test]
    fn seq_gap_mode_accepts_shard_slices_but_keeps_order_and_ledger() {
        // A shard-local stream: global seqs 1, 4, 9 with serves — legal
        // once gaps are allowed, illegal for the default checker.
        let slice = [
            arrived(1, 1),
            Event::JobServed {
                t: 1,
                seq: 1,
                vehicle: 0,
                cost: 1,
            },
            arrived(2, 4),
            arrived(3, 9),
        ];
        let mut strict = TraceChecker::new();
        let mut lax = TraceChecker::new();
        lax.allow_seq_gaps();
        for ev in &slice {
            strict.observe(ev);
            lax.observe(ev);
        }
        assert!(!strict.is_clean());
        assert!(lax.is_clean(), "{:?}", lax.violations());

        // Out-of-order arrivals and phantom serves still fire in gap mode.
        let mut lax = TraceChecker::new();
        lax.allow_seq_gaps();
        lax.observe(&arrived(1, 5));
        lax.observe(&arrived(2, 3));
        assert_eq!(lax.violations().len(), 1);
        assert_eq!(lax.violations()[0].invariant, "job-ledger");
        let mut lax = TraceChecker::new();
        lax.allow_seq_gaps();
        lax.observe(&arrived(1, 5));
        lax.observe(&Event::JobServed {
            t: 2,
            seq: 3,
            vehicle: 0,
            cost: 1,
        });
        assert!(lax
            .violations()
            .iter()
            .any(|v| v.invariant == "job-ledger" && v.detail.contains("never arrived")));
    }

    #[test]
    fn serve_between_arrivals_checked_precisely() {
        // seq 1 arrived, seq 0 never did; serving seq 0 must fire even
        // though 0 < next_job_seq (the old high-water heuristic missed it).
        let mut checker = TraceChecker::new();
        checker.observe(&arrived(1, 1)); // itself an order violation (strict)
        checker.observe(&Event::JobServed {
            t: 2,
            seq: 0,
            vehicle: 0,
            cost: 1,
        });
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.detail.contains("never arrived")));
    }

    /// Runs the valid trace through a causality-recording checker and
    /// returns the index.
    fn causal_index_of(events: &[Event]) -> CausalIndex {
        let mut checker = TraceChecker::new();
        checker.record_causality();
        for ev in events {
            checker.observe(ev);
        }
        checker.finish();
        checker.into_causal_index().unwrap()
    }

    #[test]
    fn causal_index_records_channel_and_ledger_edges() {
        let ix = causal_index_of(&valid_trace());
        // Serve of job 0 (line 3) hangs off its arrival (line 2).
        assert_eq!(ix.serve_line(0), Some(3));
        assert_eq!(ix.arrival_line(0), Some(2));
        assert_eq!(ix.node(3).unwrap().preds, vec![2]);
        // Query delivery (line 6) hangs off its send (line 5).
        assert_eq!(ix.node(6).unwrap().preds, vec![5]);
        // Completion (line 9) hangs off its start (line 4) and the reply
        // delivery (line 8, the initiator's previous act).
        assert_eq!(ix.node(9).unwrap().preds, vec![4, 8]);
        // The replacement arrival (line 12) hangs off the successful
        // completion (line 9) and the move delivery (line 11).
        assert_eq!(ix.node(12).unwrap().preds, vec![9, 11]);
        // Actors carry Lamport clocks consistent with causality.
        let (actor, at_send) = ix.node(5).unwrap().actor.unwrap();
        assert_eq!(actor, 0);
        let (actor, at_delivery) = ix.node(6).unwrap().actor.unwrap();
        assert_eq!(actor, 1);
        assert!(at_delivery > at_send);
    }

    #[test]
    fn causal_chain_walks_back_through_the_diffusion() {
        let ix = causal_index_of(&valid_trace());
        let chain: Vec<usize> = ix.chain(12, 8).iter().map(|n| n.line).collect();
        // Most recent 8 ancestors of the replacement arrival, ascending:
        // the whole search — start, query send/delivery, reply
        // send/delivery, completion, move send/delivery.
        assert_eq!(chain, vec![4, 5, 6, 7, 8, 9, 10, 11]);
        // A tighter cap keeps the most recent ancestors.
        let short: Vec<usize> = ix.chain(12, 3).iter().map(|n| n.line).collect();
        assert_eq!(short, vec![9, 10, 11]);
    }

    #[test]
    fn violations_carry_their_causal_chain() {
        // Double-serve: the second serve (line 4) is the offender; its
        // chain must reach the arrival and the first serve.
        let events = [
            arrived(1, 0),
            Event::JobServed {
                t: 1,
                seq: 0,
                vehicle: 0,
                cost: 1,
            },
            arrived(2, 1),
            Event::JobServed {
                t: 2,
                seq: 0,
                vehicle: 0,
                cost: 1,
            },
        ];
        let report = check(&events);
        let v = report
            .violations
            .iter()
            .find(|v| v.detail.contains("served twice"))
            .unwrap();
        assert_eq!(v.line, 4);
        assert!(
            v.chain.iter().any(|c| c.starts_with("line 1:")),
            "chain should reach the arrival: {:?}",
            v.chain
        );
        assert!(
            v.chain.iter().any(|c| c.starts_with("line 2:")),
            "chain should reach the first serve: {:?}",
            v.chain
        );
        assert!(format!("{v}").contains("caused by:"));
    }

    #[test]
    fn merge_checker_guards_global_clock_and_seq_contiguity() {
        let mut mc = MergeChecker::new();
        mc.observe(&Event::FleetProvisioned {
            t: 0,
            vehicles: 4,
            capacity: 10,
        });
        mc.observe(&arrived(1, 0));
        mc.observe(&arrived(2, 1));
        assert!(mc.is_clean());
        assert_eq!(mc.events(), 3);

        // A gap in the merged seq order: shard checkers can't see it.
        let mut mc = MergeChecker::new();
        mc.observe(&arrived(1, 0));
        mc.observe(&arrived(2, 2));
        assert_eq!(mc.violations().len(), 1);
        assert_eq!(mc.violations()[0].invariant, "job-ledger");
        assert_eq!(mc.violations()[0].line, 2);

        // Cross-shard time regression.
        let mut mc = MergeChecker::new();
        mc.observe(&arrived(5, 0));
        mc.observe(&arrived(3, 1));
        assert!(mc.into_violations().iter().any(|v| v.invariant == "clock"));

        // Heartbeats are tick-round stamped: exempt from the merged clock.
        let mut mc = MergeChecker::new();
        mc.observe(&arrived(5, 0));
        mc.observe(&Event::HeartbeatMissed {
            t: 1,
            watcher: 0,
            peer: 1,
        });
        assert!(mc.is_clean());
    }

    #[test]
    fn merge_checker_resume_seeding_validates_stitching() {
        // A resumed tail continues cleanly when the seeds match...
        let mut mc = MergeChecker::new();
        mc.resume_at(10, 7, 3);
        mc.observe(&arrived(8, 3));
        assert!(mc.is_clean());
        assert_eq!(mc.events(), 11, "line numbers stay global");

        // ...but a repeated arrival or a clock regression at the seam is
        // caught, with the line number counted from the whole run.
        let mut mc = MergeChecker::new();
        mc.resume_at(10, 7, 3);
        mc.observe(&arrived(5, 2));
        let kinds: Vec<_> = mc.violations().iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"clock"), "{kinds:?}");
        assert!(kinds.contains(&"job-ledger"), "{kinds:?}");
        assert_eq!(mc.violations()[0].line, 11);
    }

    #[test]
    #[should_panic(expected = "resume_at")]
    fn merge_checker_resume_after_observe_panics() {
        let mut mc = MergeChecker::new();
        mc.observe(&arrived(1, 0));
        mc.resume_at(10, 7, 3);
    }
}

#[cfg(test)]
mod profile {
    use super::*;

    // Poor-man's profiler: `cargo test -p cmvrp-obs --release -- --ignored
    // profile_variants --nocapture` prints per-variant observe() costs.
    #[test]
    #[ignore]
    fn profile_variants() {
        let n = 200_000usize;
        let mk = |f: &dyn Fn(u64) -> Event| (0..n as u64).map(f).collect::<Vec<_>>();
        let streams: Vec<(&str, Vec<Event>)> = vec![
            (
                "msg_sent",
                mk(&|i| Event::MsgSent {
                    t: i,
                    from: (i % 256) as usize,
                    to: ((i + 1) % 256) as usize,
                    kind: Some(MsgKind::Heartbeat),
                }),
            ),
            (
                "sent+delivered",
                (0..n as u64)
                    .flat_map(|i| {
                        let (from, to) = ((i % 256) as usize, ((i + 1) % 256) as usize);
                        [
                            Event::MsgSent {
                                t: 2 * i,
                                from,
                                to,
                                kind: Some(MsgKind::Query),
                            },
                            Event::MsgDelivered {
                                t: 2 * i + 1,
                                from,
                                to,
                                delay: 1,
                                kind: Some(MsgKind::Query),
                            },
                        ]
                    })
                    .collect(),
            ),
            (
                "job_arrived",
                mk(&|i| Event::JobArrived {
                    t: i,
                    seq: i,
                    pos: vec![0, 0],
                }),
            ),
        ];
        for (name, evs) in &streams {
            let t = std::time::Instant::now();
            let mut c = TraceChecker::new();
            for ev in evs {
                std::hint::black_box(c.observe(ev));
            }
            let el = t.elapsed().as_nanos() as f64 / evs.len() as f64;
            println!("{name}: {el:.1} ns/event ({} events)", evs.len());
            assert!(
                c.is_clean(),
                "{:?}",
                &c.violations()[..1.min(c.violations().len())]
            );
        }
    }
}
