//! Trace replay: rebuild a run's headline numbers from its JSONL trace
//! alone.
//!
//! `cmvrp replay <trace.jsonl>` uses this to check that a trace is
//! self-contained — served/unserved job counts, message-wave totals, and
//! the delay distribution must all be derivable without rerunning the
//! simulator.

use crate::event::{DropReason, Event};
use crate::metrics::Histogram;
use std::collections::BTreeMap;

/// Aggregate counts reconstructed from a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySummary {
    /// Total events parsed.
    pub events: u64,
    /// `msg_sent` events.
    pub msgs_sent: u64,
    /// `msg_delivered` events.
    pub msgs_delivered: u64,
    /// `msg_dropped` with reason `lost`.
    pub msgs_lost: u64,
    /// `msg_dropped` with reason `crashed`.
    pub msgs_to_crashed: u64,
    /// `job_arrived` events.
    pub jobs_arrived: u64,
    /// `job_served` events.
    pub jobs_served: u64,
    /// Total energy charged across `job_served` events.
    pub energy: u64,
    /// `diffusion_started` events.
    pub diffusions_started: u64,
    /// `diffusion_completed` events.
    pub diffusions_completed: u64,
    /// `diffusion_completed` events with `found: true`.
    pub diffusions_found: u64,
    /// `replacement_cycle` events.
    pub replacement_cycles: u64,
    /// `heartbeat_missed` events.
    pub heartbeat_misses: u64,
    /// `process_crashed` events.
    pub crashes: u64,
    /// Fleet size from the last `fleet_provisioned` event, if any.
    pub fleet_vehicles: Option<u64>,
    /// Battery capacity `W` from the last `fleet_provisioned` event.
    pub fleet_capacity: Option<u64>,
    /// `round_profile` flight-recorder samples.
    pub round_profiles: u64,
    /// Largest simulation time stamped on any event.
    pub last_t: u64,
    /// Delivery-delay histogram over `msg_delivered` events, if any.
    pub delay_hist: Option<Histogram>,
    /// Total nanoseconds per phase-span name.
    pub span_ns: BTreeMap<String, u64>,
}

impl ReplaySummary {
    /// Jobs that arrived but were never served.
    pub fn jobs_unserved(&self) -> u64 {
        self.jobs_arrived.saturating_sub(self.jobs_served)
    }

    /// Renders the summary as `(name, value)` rows for table output,
    /// in a stable order.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = vec![
            ("events".into(), self.events.to_string()),
            ("msgs_sent".into(), self.msgs_sent.to_string()),
            ("msgs_delivered".into(), self.msgs_delivered.to_string()),
            ("msgs_lost".into(), self.msgs_lost.to_string()),
            ("msgs_to_crashed".into(), self.msgs_to_crashed.to_string()),
            ("jobs_arrived".into(), self.jobs_arrived.to_string()),
            ("jobs_served".into(), self.jobs_served.to_string()),
            ("jobs_unserved".into(), self.jobs_unserved().to_string()),
            ("energy".into(), self.energy.to_string()),
            (
                "diffusions_started".into(),
                self.diffusions_started.to_string(),
            ),
            (
                "diffusions_completed".into(),
                self.diffusions_completed.to_string(),
            ),
            ("diffusions_found".into(), self.diffusions_found.to_string()),
            (
                "replacement_cycles".into(),
                self.replacement_cycles.to_string(),
            ),
            ("heartbeat_misses".into(), self.heartbeat_misses.to_string()),
            ("crashes".into(), self.crashes.to_string()),
            ("last_t".into(), self.last_t.to_string()),
        ];
        if self.round_profiles > 0 {
            rows.push(("round_profiles".into(), self.round_profiles.to_string()));
        }
        if let Some(v) = self.fleet_vehicles {
            rows.push(("fleet_vehicles".into(), v.to_string()));
        }
        if let Some(w) = self.fleet_capacity {
            rows.push(("fleet_capacity".into(), w.to_string()));
        }
        if let Some(h) = &self.delay_hist {
            rows.push(("msg_delay.mean".into(), format!("{:.2}", h.mean())));
            rows.push(("msg_delay.max".into(), h.max().to_string()));
        }
        for (name, ns) in &self.span_ns {
            rows.push((format!("span.{name}.ns"), ns.to_string()));
        }
        rows
    }

    /// Folds one event into the summary.
    pub fn absorb(&mut self, ev: &Event) {
        self.events += 1;
        match ev {
            Event::MsgSent { t, .. } => {
                self.msgs_sent += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::MsgDelivered { t, delay, .. } => {
                self.msgs_delivered += 1;
                self.last_t = self.last_t.max(*t);
                self.delay_hist
                    .get_or_insert_with(|| Histogram::with_bounds(&crate::metrics::DEFAULT_BUCKETS))
                    .observe(*delay);
            }
            Event::MsgDropped { t, reason, .. } => {
                match reason {
                    DropReason::Lost => self.msgs_lost += 1,
                    DropReason::RecipientCrashed => self.msgs_to_crashed += 1,
                }
                self.last_t = self.last_t.max(*t);
            }
            Event::JobArrived { t, .. } => {
                self.jobs_arrived += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::JobServed { t, cost, .. } => {
                self.jobs_served += 1;
                self.energy += cost;
                self.last_t = self.last_t.max(*t);
            }
            Event::DiffusionStarted { t, .. } => {
                self.diffusions_started += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::DiffusionCompleted { t, found, .. } => {
                self.diffusions_completed += 1;
                if *found {
                    self.diffusions_found += 1;
                }
                self.last_t = self.last_t.max(*t);
            }
            Event::ReplacementCycle { t, .. } => {
                self.replacement_cycles += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::HeartbeatMissed { t, .. } => {
                self.heartbeat_misses += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::FleetProvisioned {
                t,
                vehicles,
                capacity,
            } => {
                self.fleet_vehicles = Some(*vehicles);
                self.fleet_capacity = Some(*capacity);
                self.last_t = self.last_t.max(*t);
            }
            Event::ProcessCrashed { t, .. } => {
                self.crashes += 1;
                self.last_t = self.last_t.max(*t);
            }
            Event::PhaseSpan {
                name,
                start_ns,
                end_ns,
            } => {
                let entry = self.span_ns.entry(name.clone()).or_insert(0);
                *entry += end_ns.saturating_sub(*start_ns);
            }
            Event::RoundProfile { .. } => {
                self.round_profiles += 1;
            }
        }
    }
}

/// Summarizes a trace from its JSONL lines; blank lines are skipped.
///
/// # Errors
///
/// Returns `(1-based line number, parse error)` for the first malformed
/// line.
pub fn summarize<'a, I>(lines: I) -> Result<ReplaySummary, (usize, String)>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut summary = ReplaySummary::default();
    for (i, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::from_json(line).map_err(|e| (i + 1, e))?;
        summary.absorb(&ev);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Event> {
        vec![
            Event::FleetProvisioned {
                t: 0,
                vehicles: 16,
                capacity: 9,
            },
            Event::JobArrived {
                t: 1,
                seq: 0,
                pos: vec![2, 2],
            },
            Event::MsgSent {
                t: 1,
                from: 0,
                to: 1,
                kind: None,
            },
            Event::MsgDelivered {
                t: 3,
                from: 0,
                to: 1,
                delay: 2,
                kind: None,
            },
            Event::MsgSent {
                t: 3,
                from: 1,
                to: 0,
                kind: None,
            },
            Event::MsgDropped {
                t: 4,
                from: 1,
                to: 0,
                reason: DropReason::Lost,
                kind: None,
            },
            Event::JobArrived {
                t: 5,
                seq: 1,
                pos: vec![0, 0],
            },
            Event::JobServed {
                t: 5,
                seq: 1,
                vehicle: 7,
                cost: 3,
            },
            Event::DiffusionStarted {
                t: 6,
                initiator: 7,
                generation: 0,
            },
            Event::DiffusionCompleted {
                t: 9,
                initiator: 7,
                generation: 0,
                found: true,
            },
            Event::ReplacementCycle {
                t: 12,
                vehicle: 8,
                dest: vec![2, 2],
                dist: 4,
            },
            Event::ProcessCrashed { t: 13, proc: 3 },
            Event::HeartbeatMissed {
                t: 14,
                watcher: 2,
                peer: 3,
            },
            Event::PhaseSpan {
                name: "solve".into(),
                start_ns: 100,
                end_ns: 350,
            },
            Event::PhaseSpan {
                name: "solve".into(),
                start_ns: 400,
                end_ns: 450,
            },
        ]
    }

    #[test]
    fn summarize_reconstructs_counts() {
        let lines: Vec<String> = trace().iter().map(Event::to_json).collect();
        let s = summarize(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(s.events, 15);
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.msgs_delivered, 1);
        assert_eq!(s.msgs_lost, 1);
        assert_eq!(s.msgs_to_crashed, 0);
        assert_eq!(s.jobs_arrived, 2);
        assert_eq!(s.jobs_served, 1);
        assert_eq!(s.jobs_unserved(), 1);
        assert_eq!(s.energy, 3);
        assert_eq!(s.diffusions_started, 1);
        assert_eq!(s.diffusions_completed, 1);
        assert_eq!(s.diffusions_found, 1);
        assert_eq!(s.replacement_cycles, 1);
        assert_eq!(s.heartbeat_misses, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.fleet_vehicles, Some(16));
        assert_eq!(s.fleet_capacity, Some(9));
        assert_eq!(s.last_t, 14);
        assert_eq!(s.delay_hist.as_ref().unwrap().count(), 1);
        assert_eq!(s.span_ns.get("solve"), Some(&300));
    }

    #[test]
    fn blank_lines_skipped_bad_lines_located() {
        let good = Event::MsgSent {
            t: 0,
            from: 0,
            to: 1,
            kind: None,
        }
        .to_json();
        let s = summarize(vec![good.as_str(), "", "  "]).unwrap();
        assert_eq!(s.events, 1);
        let err = summarize(vec![good.as_str(), "", "nope"]).unwrap_err();
        assert_eq!(err.0, 3);
    }

    #[test]
    fn malformed_first_line_is_line_one() {
        // Line numbers are 1-based everywhere: the very first line must be
        // reported as line 1, not 0.
        let err = summarize(vec!["not json"]).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn rows_include_spans_and_delays() {
        let lines: Vec<String> = trace().iter().map(Event::to_json).collect();
        let s = summarize(lines.iter().map(String::as_str)).unwrap();
        let rows = s.rows();
        assert!(rows.iter().any(|(n, v)| n == "span.solve.ns" && v == "300"));
        assert!(rows.iter().any(|(n, _)| n == "msg_delay.mean"));
        assert!(rows.iter().any(|(n, v)| n == "jobs_unserved" && v == "1"));
    }
}
