//! Wall-clock phase spans.
//!
//! Simulation events carry the simulator's logical clock, but algorithm
//! phases (coarsening levels, flow solves) are wall-clock work. A [`Span`]
//! measures one such phase against a process-wide monotonic epoch and
//! emits an [`Event::PhaseSpan`] when finished.

use crate::event::Event;
use crate::sink::Sink;
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call to this function in the process.
///
/// Using a process-local epoch keeps the values small, monotonic, and
/// comparable across spans without depending on the system clock.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// An in-flight named phase; finish it with [`Span::end`].
#[derive(Debug)]
pub struct Span {
    name: String,
    start_ns: u64,
}

impl Span {
    /// Starts timing a phase.
    pub fn begin(name: impl Into<String>) -> Self {
        Span {
            name: name.into(),
            start_ns: now_ns(),
        }
    }

    /// Name this span was started with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stops the span, records a [`Event::PhaseSpan`] into `sink`, and
    /// returns the elapsed nanoseconds. Spans are rare (one per algorithm
    /// phase), so the enablement check is a runtime call — which also
    /// keeps this usable behind `&mut dyn Sink`.
    pub fn end<S: Sink + ?Sized>(self, sink: &mut S) -> u64 {
        let end_ns = now_ns();
        let elapsed = end_ns - self.start_ns;
        if sink.is_enabled() {
            sink.record(&Event::PhaseSpan {
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
            });
        }
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RingSink};

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn span_records_into_enabled_sink() {
        let mut ring = RingSink::new(4);
        let span = Span::begin("coarsen");
        assert_eq!(span.name(), "coarsen");
        span.end(&mut ring);
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::PhaseSpan {
                name,
                start_ns,
                end_ns,
            } => {
                assert_eq!(name, "coarsen");
                assert!(end_ns >= start_ns);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn span_skips_disabled_sink() {
        // Nothing to assert beyond "does not panic"; the null sink
        // reports itself disabled, which short-circuits the record.
        let elapsed = Span::begin("noop").end(&mut NullSink);
        let _ = elapsed;
    }
}
