//! Binary trace format: the same [`Event`] vocabulary as the JSONL schema
//! in a compact, length-prefixed frame encoding.
//!
//! A binary trace is:
//!
//! ```text
//! magic "CMVB" (4 bytes) | version (1 byte) | frame*
//! frame := varint(payload_len) | payload
//! payload := tag (1 byte) | fields
//! ```
//!
//! All integer fields are LEB128 varints; signed values (position
//! coordinates, `round_profile` nanoseconds) are zigzag-mapped first so
//! small magnitudes stay short. Strings are `varint(len)` + UTF-8 bytes,
//! coordinate vectors `varint(len)` + zigzag elements, and the optional
//! message `kind` a single byte (0 = absent). The format is append-only in
//! the same sense as the JSONL schema: decoders ignore trailing bytes
//! inside a frame so later versions can append fields, while an unknown
//! tag or a bumped version byte is a hard error.
//!
//! [`BinSink`] is the write side — a [`Sink`] like [`crate::JsonlSink`]
//! but with no per-event allocation (one reusable scratch buffer) —
//! and [`BinReader`] the read side: an iterator of events whose errors
//! carry the 1-based frame index and absolute byte offset, and which
//! never panics on truncated or corrupt input.

use crate::event::{DropReason, Event, MsgKind};
use crate::sink::{Sink, StaticSink};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// The four magic bytes opening every binary trace.
pub const BIN_MAGIC: [u8; 4] = *b"CMVB";

/// The format version this build writes and the highest it reads.
pub const BIN_VERSION: u8 = 1;

/// True when `bytes` begin with the binary-trace magic — the sniff used by
/// `cmvrp trace …` to accept either encoding transparently.
pub fn is_binary_trace(bytes: &[u8]) -> bool {
    bytes.starts_with(&BIN_MAGIC)
}

// ---- varint primitives ----

fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, zigzag(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_pos(buf: &mut Vec<u8>, pos: &[i64]) {
    put_u64(buf, pos.len() as u64);
    for &c in pos {
        put_i64(buf, c);
    }
}

fn put_kind(buf: &mut Vec<u8>, kind: &Option<MsgKind>) {
    buf.push(match kind {
        None => 0,
        Some(MsgKind::Query) => 1,
        Some(MsgKind::Reply) => 2,
        Some(MsgKind::Move) => 3,
        Some(MsgKind::Heartbeat) => 4,
    });
}

// Frame tags, in declaration order of the `Event` enum.
const TAG_MSG_SENT: u8 = 1;
const TAG_MSG_DELIVERED: u8 = 2;
const TAG_MSG_DROPPED: u8 = 3;
const TAG_JOB_ARRIVED: u8 = 4;
const TAG_JOB_SERVED: u8 = 5;
const TAG_DIFFUSION_STARTED: u8 = 6;
const TAG_DIFFUSION_COMPLETED: u8 = 7;
const TAG_REPLACEMENT_CYCLE: u8 = 8;
const TAG_HEARTBEAT_MISSED: u8 = 9;
const TAG_FLEET_PROVISIONED: u8 = 10;
const TAG_PROCESS_CRASHED: u8 = 11;
const TAG_PHASE_SPAN: u8 = 12;
const TAG_ROUND_PROFILE: u8 = 13;

/// Encodes one event's frame *payload* (tag + fields, no length prefix)
/// into `buf`, which is cleared first.
fn encode_payload(ev: &Event, buf: &mut Vec<u8>) {
    buf.clear();
    match ev {
        Event::MsgSent { t, from, to, kind } => {
            buf.push(TAG_MSG_SENT);
            put_u64(buf, *t);
            put_u64(buf, *from as u64);
            put_u64(buf, *to as u64);
            put_kind(buf, kind);
        }
        Event::MsgDelivered {
            t,
            from,
            to,
            delay,
            kind,
        } => {
            buf.push(TAG_MSG_DELIVERED);
            put_u64(buf, *t);
            put_u64(buf, *from as u64);
            put_u64(buf, *to as u64);
            put_u64(buf, *delay);
            put_kind(buf, kind);
        }
        Event::MsgDropped {
            t,
            from,
            to,
            reason,
            kind,
        } => {
            buf.push(TAG_MSG_DROPPED);
            put_u64(buf, *t);
            put_u64(buf, *from as u64);
            put_u64(buf, *to as u64);
            buf.push(match reason {
                DropReason::Lost => 0,
                DropReason::RecipientCrashed => 1,
            });
            put_kind(buf, kind);
        }
        Event::JobArrived { t, seq, pos } => {
            buf.push(TAG_JOB_ARRIVED);
            put_u64(buf, *t);
            put_u64(buf, *seq);
            put_pos(buf, pos);
        }
        Event::JobServed {
            t,
            seq,
            vehicle,
            cost,
        } => {
            buf.push(TAG_JOB_SERVED);
            put_u64(buf, *t);
            put_u64(buf, *seq);
            put_u64(buf, *vehicle as u64);
            put_u64(buf, *cost);
        }
        Event::DiffusionStarted {
            t,
            initiator,
            generation,
        } => {
            buf.push(TAG_DIFFUSION_STARTED);
            put_u64(buf, *t);
            put_u64(buf, *initiator as u64);
            put_u64(buf, *generation);
        }
        Event::DiffusionCompleted {
            t,
            initiator,
            generation,
            found,
        } => {
            buf.push(TAG_DIFFUSION_COMPLETED);
            put_u64(buf, *t);
            put_u64(buf, *initiator as u64);
            put_u64(buf, *generation);
            buf.push(u8::from(*found));
        }
        Event::ReplacementCycle {
            t,
            vehicle,
            dest,
            dist,
        } => {
            buf.push(TAG_REPLACEMENT_CYCLE);
            put_u64(buf, *t);
            put_u64(buf, *vehicle as u64);
            put_pos(buf, dest);
            put_u64(buf, *dist);
        }
        Event::HeartbeatMissed { t, watcher, peer } => {
            buf.push(TAG_HEARTBEAT_MISSED);
            put_u64(buf, *t);
            put_u64(buf, *watcher as u64);
            put_u64(buf, *peer as u64);
        }
        Event::FleetProvisioned {
            t,
            vehicles,
            capacity,
        } => {
            buf.push(TAG_FLEET_PROVISIONED);
            put_u64(buf, *t);
            put_u64(buf, *vehicles);
            put_u64(buf, *capacity);
        }
        Event::ProcessCrashed { t, proc } => {
            buf.push(TAG_PROCESS_CRASHED);
            put_u64(buf, *t);
            put_u64(buf, *proc as u64);
        }
        Event::PhaseSpan {
            name,
            start_ns,
            end_ns,
        } => {
            buf.push(TAG_PHASE_SPAN);
            put_str(buf, name);
            put_u64(buf, *start_ns);
            put_u64(buf, *end_ns);
        }
        Event::RoundProfile {
            round,
            worker,
            workers,
            busy_ns,
            barrier_wait_ns,
            merge_ns,
            sink_ns,
            events,
            steals,
        } => {
            buf.push(TAG_ROUND_PROFILE);
            put_u64(buf, *round);
            put_u64(buf, *worker);
            put_u64(buf, *workers);
            put_i64(buf, *busy_ns);
            put_i64(buf, *barrier_wait_ns);
            put_i64(buf, *merge_ns);
            put_i64(buf, *sink_ns);
            put_u64(buf, *events);
            put_u64(buf, *steals);
        }
    }
}

/// Streams events as binary frames to any writer.
///
/// The binary sibling of [`crate::JsonlSink`]: buffered writes, sticky I/O
/// errors surfaced by [`BinSink::finish`], and — the point of the format —
/// no per-event heap allocation: each event is encoded into one reusable
/// scratch buffer.
#[derive(Debug)]
pub struct BinSink<W: Write> {
    writer: BufWriter<W>,
    scratch: Vec<u8>,
    written: u64,
    error: Option<io::Error>,
}

impl BinSink<File> {
    /// Creates (truncating) a binary trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(BinSink::new(File::create(path)?))
    }
}

impl<W: Write> BinSink<W> {
    /// Wraps an arbitrary writer and writes the magic + version header.
    pub fn new(writer: W) -> Self {
        let mut sink = BinSink {
            writer: BufWriter::new(writer),
            scratch: Vec::with_capacity(64),
            written: 0,
            error: None,
        };
        let mut header = [0u8; 5];
        header[..4].copy_from_slice(&BIN_MAGIC);
        header[4] = BIN_VERSION;
        if let Err(e) = sink.writer.write_all(&header) {
            sink.error = Some(e);
        }
        sink
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the event count, or the first I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error hit while writing or flushing.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.written)
    }

    /// Flushes and returns the underlying writer (handy when writing to a
    /// `Vec<u8>` in tests).
    ///
    /// # Errors
    ///
    /// Returns the first error hit while writing or flushing.
    pub fn into_writer(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> Sink for BinSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        encode_payload(event, &mut self.scratch);
        // The length prefix is at most 10 varint bytes; stage it on the
        // stack so a frame is exactly two `write_all` calls.
        let mut prefix = [0u8; 10];
        let mut v = self.scratch.len() as u64;
        let mut n = 0;
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                prefix[n] = b;
                n += 1;
                break;
            }
            prefix[n] = b | 0x80;
            n += 1;
        }
        let res = self
            .writer
            .write_all(&prefix[..n])
            .and_then(|()| self.writer.write_all(&self.scratch));
        match res {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_events(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> StaticSink for BinSink<W> {}

/// A scoped decode error: which frame broke, and where in the file.
///
/// `frame` is 1-based (frame 0 means the 5-byte header itself was bad) and
/// `offset` is the absolute byte position the error was detected at, so
/// `trace check` over a binary trace can anchor violations the same way
/// line numbers anchor them in JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError {
    /// 1-based index of the offending frame; 0 for header errors.
    pub frame: usize,
    /// Absolute byte offset where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frame == 0 {
            write!(f, "header at byte {}: {}", self.offset, self.msg)
        } else {
            write!(
                f,
                "frame {} at byte {}: {}",
                self.frame, self.offset, self.msg
            )
        }
    }
}

impl std::error::Error for BinError {}

/// Bounds-checked cursor over one frame's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute offset of `bytes[0]` in the file, for error reporting.
    base: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> (usize, String) {
        (self.base + self.pos, msg.into())
    }

    fn u8(&mut self) -> Result<u8, (usize, String)> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("payload truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, (usize, String)> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.err("varint longer than 10 bytes"));
            }
        }
    }

    fn i64(&mut self) -> Result<i64, (usize, String)> {
        Ok(unzigzag(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, (usize, String)> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} overflows usize")))
    }

    fn str(&mut self) -> Result<String, (usize, String)> {
        let len = self.usize()?;
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.err(format!("string length {len} exceeds payload")));
        }
        let raw = &self.bytes[self.pos..self.pos + len];
        let s = std::str::from_utf8(raw)
            .map_err(|e| self.err(format!("string is not UTF-8: {e}")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    fn pos_arr(&mut self) -> Result<Vec<i64>, (usize, String)> {
        let len = self.usize()?;
        // Each element is ≥1 byte; reject lengths the payload cannot hold
        // before allocating.
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(self.err(format!("array length {len} exceeds payload")));
        }
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            arr.push(self.i64()?);
        }
        Ok(arr)
    }

    fn kind(&mut self) -> Result<Option<MsgKind>, (usize, String)> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(MsgKind::Query)),
            2 => Ok(Some(MsgKind::Reply)),
            3 => Ok(Some(MsgKind::Move)),
            4 => Ok(Some(MsgKind::Heartbeat)),
            other => Err(self.err(format!("unknown msg-kind byte {other}"))),
        }
    }
}

/// Decodes one frame payload. Trailing bytes are ignored (append-only
/// schema evolution, mirroring "readers must ignore unknown fields").
fn decode_payload(bytes: &[u8], base: usize) -> Result<Event, (usize, String)> {
    let mut c = Cursor {
        bytes,
        pos: 0,
        base,
    };
    let tag = c.u8()?;
    let ev = match tag {
        TAG_MSG_SENT => Event::MsgSent {
            t: c.u64()?,
            from: c.usize()?,
            to: c.usize()?,
            kind: c.kind()?,
        },
        TAG_MSG_DELIVERED => Event::MsgDelivered {
            t: c.u64()?,
            from: c.usize()?,
            to: c.usize()?,
            delay: c.u64()?,
            kind: c.kind()?,
        },
        TAG_MSG_DROPPED => Event::MsgDropped {
            t: c.u64()?,
            from: c.usize()?,
            to: c.usize()?,
            reason: match c.u8()? {
                0 => DropReason::Lost,
                1 => DropReason::RecipientCrashed,
                other => return Err(c.err(format!("unknown drop-reason byte {other}"))),
            },
            kind: c.kind()?,
        },
        TAG_JOB_ARRIVED => Event::JobArrived {
            t: c.u64()?,
            seq: c.u64()?,
            pos: c.pos_arr()?,
        },
        TAG_JOB_SERVED => Event::JobServed {
            t: c.u64()?,
            seq: c.u64()?,
            vehicle: c.usize()?,
            cost: c.u64()?,
        },
        TAG_DIFFUSION_STARTED => Event::DiffusionStarted {
            t: c.u64()?,
            initiator: c.usize()?,
            generation: c.u64()?,
        },
        TAG_DIFFUSION_COMPLETED => Event::DiffusionCompleted {
            t: c.u64()?,
            initiator: c.usize()?,
            generation: c.u64()?,
            found: match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(c.err(format!("bad bool byte {other}"))),
            },
        },
        TAG_REPLACEMENT_CYCLE => Event::ReplacementCycle {
            t: c.u64()?,
            vehicle: c.usize()?,
            dest: c.pos_arr()?,
            dist: c.u64()?,
        },
        TAG_HEARTBEAT_MISSED => Event::HeartbeatMissed {
            t: c.u64()?,
            watcher: c.usize()?,
            peer: c.usize()?,
        },
        TAG_FLEET_PROVISIONED => Event::FleetProvisioned {
            t: c.u64()?,
            vehicles: c.u64()?,
            capacity: c.u64()?,
        },
        TAG_PROCESS_CRASHED => Event::ProcessCrashed {
            t: c.u64()?,
            proc: c.usize()?,
        },
        TAG_PHASE_SPAN => Event::PhaseSpan {
            name: c.str()?,
            start_ns: c.u64()?,
            end_ns: c.u64()?,
        },
        TAG_ROUND_PROFILE => Event::RoundProfile {
            round: c.u64()?,
            worker: c.u64()?,
            workers: c.u64()?,
            busy_ns: c.i64()?,
            barrier_wait_ns: c.i64()?,
            merge_ns: c.i64()?,
            sink_ns: c.i64()?,
            events: c.u64()?,
            steals: c.u64()?,
        },
        other => return Err((base, format!("unknown event tag {other}"))),
    };
    Ok(ev)
}

/// Iterator over the events of an in-memory binary trace.
///
/// Construction validates the header; each [`Iterator::next`] decodes one
/// frame. The first error ends iteration (the stream position is no longer
/// trustworthy past a corrupt frame); errors are values, never panics.
#[derive(Debug)]
pub struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: usize,
    failed: bool,
}

impl<'a> BinReader<'a> {
    /// Wraps a complete binary trace.
    ///
    /// # Errors
    ///
    /// Returns a frame-0 [`BinError`] when the magic bytes are wrong, the
    /// header is truncated, or the version is newer than this build reads.
    pub fn new(bytes: &'a [u8]) -> Result<Self, BinError> {
        if bytes.len() < 5 {
            return Err(BinError {
                frame: 0,
                offset: bytes.len(),
                msg: format!("truncated header: {} bytes, need 5", bytes.len()),
            });
        }
        if bytes[..4] != BIN_MAGIC {
            return Err(BinError {
                frame: 0,
                offset: 0,
                msg: format!("bad magic {:?}, expected {BIN_MAGIC:?}", &bytes[..4]),
            });
        }
        if bytes[4] > BIN_VERSION {
            return Err(BinError {
                frame: 0,
                offset: 4,
                msg: format!(
                    "format version {} is newer than supported version {BIN_VERSION}",
                    bytes[4]
                ),
            });
        }
        Ok(BinReader {
            bytes,
            pos: 5,
            frame: 0,
            failed: false,
        })
    }

    /// Frames successfully decoded so far.
    pub fn frames(&self) -> usize {
        self.frame
    }

    fn fail(&mut self, offset: usize, msg: String) -> BinError {
        self.failed = true;
        BinError {
            frame: self.frame + 1,
            offset,
            msg,
        }
    }
}

impl<'a> Iterator for BinReader<'a> {
    type Item = Result<Event, BinError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.bytes.len() {
            return None;
        }
        let frame_start = self.pos;
        // Frame length prefix, decoded in place so truncation mid-varint
        // is caught here rather than in the payload cursor.
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Some(Err(
                    self.fail(frame_start, "truncated frame length".to_string())
                ));
            };
            self.pos += 1;
            if shift == 63 && b > 1 {
                return Some(Err(
                    self.fail(frame_start, "frame length overflows u64".to_string())
                ));
            }
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                return Some(Err(self.fail(
                    frame_start,
                    "frame length varint longer than 10 bytes".to_string(),
                )));
            }
        }
        let remaining = self.bytes.len() - self.pos;
        if len == 0 {
            return Some(Err(self.fail(frame_start, "empty frame".to_string())));
        }
        if len > remaining as u64 {
            return Some(Err(self.fail(
                frame_start,
                format!("frame length {len} exceeds remaining {remaining} bytes"),
            )));
        }
        let payload = &self.bytes[self.pos..self.pos + len as usize];
        let base = self.pos;
        self.pos += len as usize;
        match decode_payload(payload, base) {
            Ok(ev) => {
                self.frame += 1;
                Some(Ok(ev))
            }
            Err((offset, msg)) => Some(Err(self.fail(offset, msg))),
        }
    }
}

/// Decodes a whole binary trace into events.
///
/// # Errors
///
/// Returns the first [`BinError`] — bad header or first corrupt frame.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<Event>, BinError> {
    BinReader::new(bytes)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips_edges() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
    }

    #[test]
    fn varint_roundtrips_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut c = Cursor {
                bytes: &buf,
                pos: 0,
                base: 0,
            };
            assert_eq!(c.u64().unwrap(), v);
            assert_eq!(c.pos, buf.len(), "value {v} left trailing bytes");
        }
    }

    #[test]
    fn header_is_magic_plus_version() {
        let sink = BinSink::new(Vec::new());
        let bytes = sink.into_writer().unwrap();
        assert_eq!(bytes, vec![b'C', b'M', b'V', b'B', BIN_VERSION]);
        assert!(is_binary_trace(&bytes));
        assert!(!is_binary_trace(b"{\"ev\":\"msg_sent\""));
        assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn sink_reader_roundtrip() {
        let events = vec![
            Event::FleetProvisioned {
                t: 0,
                vehicles: 4,
                capacity: 10,
            },
            Event::JobArrived {
                t: 1,
                seq: 0,
                pos: vec![5, -5],
            },
            Event::MsgSent {
                t: 1,
                from: 0,
                to: 3,
                kind: Some(MsgKind::Query),
            },
            Event::PhaseSpan {
                name: "we\"ird\\name".into(),
                start_ns: 3,
                end_ns: 9,
            },
            Event::RoundProfile {
                round: 7,
                worker: 1,
                workers: 2,
                busy_ns: -3,
                barrier_wait_ns: 1 << 40,
                merge_ns: 0,
                sink_ns: 12,
                events: 99,
                steals: 1,
            },
        ];
        let mut sink = BinSink::new(Vec::new());
        for ev in &events {
            sink.record(ev);
        }
        assert_eq!(sink.written(), events.len() as u64);
        let bytes = sink.into_writer().unwrap();
        assert_eq!(decode_trace(&bytes).unwrap(), events);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk on fire"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn bin_error_is_sticky_and_surfaced() {
        let mut sink = BinSink::new(FailingWriter);
        for t in 0..10_000 {
            sink.record(&Event::MsgSent {
                t,
                from: 0,
                to: 1,
                kind: None,
            });
        }
        assert!(sink.finish().is_err());
    }
}
