//! Encoding-sniffing trace loader shared by every trace consumer.
//!
//! A trace file on disk is either JSONL (the canonical schema in the
//! [crate docs](crate)) or the CMVB binary frame format ([`crate::bin`]).
//! [`load_trace`] reads a file, sniffs the magic bytes, and normalizes
//! both to canonical JSONL text plus a small identity header (encoding,
//! schema version, event count) so forensic reports can name their input.
//!
//! The loader is where the file-shaped edge cases are caught once, for
//! everyone: an empty file, a file shorter than the binary magic, and a
//! JSONL file whose last line was truncated mid-write all come back as
//! scoped [`LoadError`]s — never panics, and never a silently misparsed
//! trace.

use crate::bin::{decode_trace, is_binary_trace, BIN_MAGIC};
use crate::event::Event;
use std::fmt;

/// The JSONL schema generation this build writes (v2 added the
/// `replacement_cycle.dist` field; v1 traces still parse).
pub const JSONL_SCHEMA_VERSION: u8 = 2;

/// Which on-disk encoding a trace was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEncoding {
    /// One flat JSON object per line.
    Jsonl,
    /// CMVB length-prefixed binary frames.
    Binary,
}

impl TraceEncoding {
    /// Display name used in report headers.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEncoding::Jsonl => "JSONL",
            TraceEncoding::Binary => "CMVB",
        }
    }
}

/// A trace load failure, scoped to what was wrong with the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// What went wrong, naming the offending location where one exists.
    pub msg: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for LoadError {}

fn err(msg: impl Into<String>) -> LoadError {
    LoadError { msg: msg.into() }
}

/// A trace normalized to canonical JSONL, whichever encoding it was in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedTrace {
    /// Canonical JSONL text (one event per line, trailing newline).
    pub text: String,
    /// The encoding the file was found in.
    pub encoding: TraceEncoding,
    /// Schema version: the binary header's version byte, or
    /// [`JSONL_SCHEMA_VERSION`] for JSONL input.
    pub version: u8,
    /// Number of events (frames, or non-blank lines).
    pub events: usize,
}

impl LoadedTrace {
    /// One-line identity header for forensic reports:
    /// `encoding JSONL, schema v2, 502 events`.
    pub fn header(&self) -> String {
        format!(
            "encoding {}, schema v{}, {} events",
            self.encoding.as_str(),
            self.version,
            self.events
        )
    }
}

/// Sniffs and normalizes in-memory trace bytes. See [`load_trace`] for the
/// file-path variant; errors here carry no path prefix.
///
/// # Errors
///
/// - an empty input (nothing to sniff);
/// - a strict prefix of the binary magic/header (a truncated binary
///   trace, which must not be misread as JSONL);
/// - a corrupt binary trace (the underlying [`crate::BinError`], with
///   frame and byte offset);
/// - non-UTF-8 bytes without the binary magic;
/// - a JSONL input whose final line is unterminated *and* unparseable —
///   the signature of a write cut off mid-line. (A parseable final line
///   merely missing its newline is accepted.)
pub fn load_trace_bytes(bytes: &[u8]) -> Result<LoadedTrace, LoadError> {
    if bytes.is_empty() {
        return Err(err("empty file (0 bytes): not a trace in either encoding \
             (JSONL traces have one event per line, binary traces open \
             with the CMVB magic)"));
    }
    if bytes.len() < BIN_MAGIC.len() && BIN_MAGIC.starts_with(bytes) {
        return Err(err(format!(
            "file is {} byte(s), shorter than the {}-byte CMVB magic it \
             begins with: truncated binary trace",
            bytes.len(),
            BIN_MAGIC.len()
        )));
    }
    if is_binary_trace(bytes) {
        let version = bytes.get(4).copied().unwrap_or(0);
        let events = decode_trace(bytes).map_err(|e| err(e.to_string()))?;
        let mut text = String::with_capacity(events.len() * 64);
        for ev in &events {
            text.push_str(&ev.to_json());
            text.push('\n');
        }
        return Ok(LoadedTrace {
            text,
            encoding: TraceEncoding::Binary,
            version,
            events: events.len(),
        });
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|e| err(format!("not UTF-8 JSONL (and no CMVB magic): {e}")))?;
    // A JSONL writer terminates every line; a final line with no newline
    // is suspect, and if it does not even parse it was cut off mid-write.
    let mut text = text.to_string();
    if !text.ends_with('\n') {
        let last_no = text.lines().count();
        let last = text.lines().last().unwrap_or("");
        if let Err(e) = Event::from_json(last) {
            return Err(err(format!(
                "line {last_no}: trailing partial line (no newline and \
                 unparseable — truncated write?): {e}"
            )));
        }
        text.push('\n');
    }
    let events = text.lines().filter(|l| !l.trim().is_empty()).count();
    Ok(LoadedTrace {
        text,
        encoding: TraceEncoding::Jsonl,
        version: JSONL_SCHEMA_VERSION,
        events,
    })
}

/// Reads and normalizes a trace file; errors are prefixed with `path`.
///
/// # Errors
///
/// I/O failures plus everything [`load_trace_bytes`] rejects.
pub fn load_trace(path: &str) -> Result<LoadedTrace, LoadError> {
    let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
    load_trace_bytes(&bytes).map_err(|e| err(format!("{path}: {}", e.msg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Sink;

    #[test]
    fn jsonl_roundtrip_with_header() {
        let text = "{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n";
        let loaded = load_trace_bytes(text.as_bytes()).unwrap();
        assert_eq!(loaded.encoding, TraceEncoding::Jsonl);
        assert_eq!(loaded.events, 1);
        assert_eq!(loaded.text, text);
        assert_eq!(loaded.header(), "encoding JSONL, schema v2, 1 events");
    }

    #[test]
    fn binary_decodes_to_canonical_jsonl() {
        let ev = Event::JobArrived {
            t: 1,
            seq: 0,
            pos: vec![3, -4],
        };
        let mut sink = crate::bin::BinSink::new(Vec::new());
        sink.record(&ev);
        let bytes = sink.into_writer().unwrap();
        let loaded = load_trace_bytes(&bytes).unwrap();
        assert_eq!(loaded.encoding, TraceEncoding::Binary);
        assert_eq!(loaded.version, crate::bin::BIN_VERSION);
        assert_eq!(loaded.events, 1);
        assert_eq!(loaded.text, format!("{}\n", ev.to_json()));
        assert!(loaded.header().contains("CMVB"));
    }

    #[test]
    fn empty_file_is_a_scoped_error() {
        let e = load_trace_bytes(b"").unwrap_err();
        assert!(e.msg.contains("empty file"), "{e}");
    }

    #[test]
    fn magic_prefix_shorter_than_magic_is_a_scoped_error() {
        for n in 1..BIN_MAGIC.len() {
            let e = load_trace_bytes(&BIN_MAGIC[..n]).unwrap_err();
            assert!(e.msg.contains("truncated binary trace"), "{n}: {e}");
        }
    }

    #[test]
    fn trailing_partial_line_is_a_scoped_error() {
        // Two good lines, then a write cut off mid-object.
        let text = "{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n\
                    {\"ev\":\"job_served\",\"t\":1,\"seq\":0,\"vehicle\":2,\"cost\":1}\n\
                    {\"ev\":\"job_arr";
        let e = load_trace_bytes(text.as_bytes()).unwrap_err();
        assert!(e.msg.contains("line 3"), "{e}");
        assert!(e.msg.contains("partial"), "{e}");
    }

    #[test]
    fn complete_final_line_without_newline_is_accepted() {
        let text = "{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}";
        let loaded = load_trace_bytes(text.as_bytes()).unwrap();
        assert_eq!(loaded.events, 1);
    }

    #[test]
    fn non_utf8_is_a_scoped_error() {
        let e = load_trace_bytes(&[0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(e.msg.contains("UTF-8"), "{e}");
    }

    #[test]
    fn corrupt_binary_carries_frame_and_offset() {
        let mut sink = crate::bin::BinSink::new(Vec::new());
        sink.record(&Event::ProcessCrashed { t: 1, proc: 2 });
        let mut bytes = sink.into_writer().unwrap();
        bytes.truncate(bytes.len() - 1); // cut the last payload byte
        let e = load_trace_bytes(&bytes).unwrap_err();
        assert!(e.msg.contains("frame 1"), "{e}");
    }

    #[test]
    fn load_trace_prefixes_path() {
        let e = load_trace("/nonexistent/trace.jsonl").unwrap_err();
        assert!(e.msg.contains("/nonexistent/trace.jsonl"), "{e}");
    }
}
