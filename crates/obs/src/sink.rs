//! Event sinks: where trace events go.
//!
//! The sink API has two halves:
//!
//! * [`Sink`] is **dyn-compatible**: execution engines accept a
//!   caller-supplied `&mut dyn Sink` and stream the canonical event order
//!   into it, so callers choose the destination (file, buffer, checker)
//!   without the engine being generic over it.
//! * [`StaticSink`] adds the compile-time `ENABLED` constant. The hot
//!   simulation loops are generic over `S: StaticSink` and guard event
//!   *construction* behind `S::ENABLED`, so a [`NullSink`]-typed run
//!   monomorphizes to nothing. Engines bridge the two worlds: they consult
//!   [`Sink::is_enabled`] once up front and route disabled runs onto the
//!   `NullSink`-typed fast path.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for trace events (dyn-compatible; see the module docs).
pub trait Sink {
    /// Records one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output; default is a no-op.
    fn flush_events(&mut self) {}

    /// Whether recording does anything at all. Engines consult this once
    /// per run to route disabled sinks onto the untraced fast path (which
    /// skips event construction wholesale); `true` for every sink except
    /// [`NullSink`].
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A [`Sink`] whose enablement is a compile-time constant.
///
/// Simulation hot loops bound by `S: StaticSink` skip event construction
/// entirely when `S::ENABLED` is false. Every concrete sink in this module
/// implements it; `&mut dyn Sink` participates through the blanket impl on
/// mutable references, which is conservatively enabled (the engines have
/// already diverted disabled sinks before handing a reference down).
pub trait StaticSink: Sink {
    /// Compile-time mirror of [`Sink::is_enabled`].
    const ENABLED: bool = true;
}

impl<S: Sink + ?Sized> Sink for &mut S {
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    fn flush_events(&mut self) {
        (**self).flush_events();
    }

    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

impl<S: Sink + ?Sized> StaticSink for &mut S {}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn record(&mut self, _event: &Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

impl StaticSink for NullSink {
    const ENABLED: bool = false;
}

/// A bounded in-memory ring buffer keeping the most recent events.
///
/// # Examples
///
/// ```
/// use cmvrp_obs::{Event, RingSink, Sink};
///
/// let mut ring = RingSink::new(2);
/// for t in 0..3 {
///     ring.record(&Event::MsgSent { t, from: 0, to: 1, kind: None });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.overwritten(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    overwritten: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            overwritten: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted to make room.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drains the ring, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(event.clone());
    }
}

impl StaticSink for RingSink {}

/// An unbounded in-memory sink: keeps every event, in order.
///
/// The sharded engine gives each shard a `VecSink`, then merges the
/// per-shard buffers into one canonical stream after the run; unlike
/// [`RingSink`] nothing is ever evicted.
///
/// # Examples
///
/// ```
/// use cmvrp_obs::{Event, Sink, VecSink};
///
/// let mut sink = VecSink::default();
/// sink.record(&Event::JobArrived { t: 1, seq: 0, pos: vec![0, 0] });
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink.drain().len(), 1);
/// assert!(sink.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    buf: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Events recorded so far, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.buf
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Takes the buffered events, leaving the sink empty.
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }
}

impl Sink for VecSink {
    fn record(&mut self, event: &Event) {
        self.buf.push(event.clone());
    }
}

impl StaticSink for VecSink {}

/// Streams events as JSON lines to any writer (hand-rolled, no serde).
///
/// I/O errors are sticky: the first one is remembered and surfaced by
/// [`JsonlSink::finish`]; recording never panics mid-simulation.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: BufWriter<W>,
    written: u64,
    error: Option<io::Error>,
}

impl JsonlSink<File> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: BufWriter::new(writer),
            written: 0,
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the event count, or the first I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error hit while writing or flushing.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.written)
    }

    /// Flushes and returns the underlying writer (handy when writing to a
    /// `Vec<u8>` in tests).
    ///
    /// # Errors
    ///
    /// Returns the first error hit while writing or flushing.
    pub fn into_writer(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json();
        let res = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"));
        match res {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_events(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> StaticSink for JsonlSink<W> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event::MsgSent {
            t,
            from: 0,
            to: 1,
            kind: None,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        assert!(!NullSink.is_enabled());
        NullSink.record(&ev(0)); // does nothing, does not panic
    }

    #[test]
    fn dyn_sinks_forward_through_mut_refs() {
        // The engines hand `&mut dyn Sink` down; the blanket impl must
        // forward records and report the referent's enablement.
        let mut vec = VecSink::new();
        {
            let dyn_sink: &mut dyn Sink = &mut vec;
            assert!(dyn_sink.is_enabled());
            let reborrow = dyn_sink;
            reborrow.record(&ev(1));
            reborrow.flush_events();
        }
        assert_eq!(vec.len(), 1);
        let mut null = NullSink;
        let dyn_null: &mut dyn Sink = &mut null;
        assert!(!dyn_null.is_enabled());
        // The static flag on `&mut S` is conservatively enabled.
        const { assert!(<&mut VecSink as StaticSink>::ENABLED) };
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(&ev(t));
        }
        let ts: Vec<u64> = ring
            .events()
            .map(|e| match e {
                Event::MsgSent { t, .. } => *t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(ring.overwritten(), 2);
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_ring_rejected() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&Event::JobArrived {
            t: 2,
            seq: 0,
            pos: vec![1, 2],
        });
        assert_eq!(sink.written(), 2);
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json(line).unwrap();
        }
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk on fire"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn jsonl_error_is_sticky_and_surfaced() {
        let mut sink = JsonlSink::new(FailingWriter);
        // BufWriter buffers, so force enough data through to hit the writer.
        for t in 0..10_000 {
            sink.record(&ev(t));
        }
        assert!(sink.finish().is_err());
    }
}
