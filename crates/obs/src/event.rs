//! Typed trace events and their JSONL wire form.
//!
//! Every event serializes to exactly one line of flat JSON via
//! [`Event::to_json`] and parses back via [`Event::from_json`]; the two are
//! inverse on every variant (tested). The schema is documented in the crate
//! docs ([`crate`]).

use std::fmt::Write as _;

/// Why a message never reached its recipient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Lost in transit by fault injection (`drop_rate`); the sender cannot
    /// tell.
    Lost,
    /// The recipient had crashed by delivery time.
    RecipientCrashed,
}

impl DropReason {
    fn as_str(self) -> &'static str {
        match self {
            DropReason::Lost => "lost",
            DropReason::RecipientCrashed => "crashed",
        }
    }
}

/// Protocol-level classification of a message, annotated onto the
/// `msg_sent`/`msg_delivered`/`msg_dropped` events when the network has a
/// classifier installed (see `Network::set_msg_classifier` in `cmvrp-net`).
///
/// The invariant monitors in [`crate::check`] need this to tell
/// Dijkstra–Scholten signal traffic (queries and their reply signals) apart
/// from Phase II move orders and §3.2.5 heartbeats; traces without the
/// annotation still parse, the kind-dependent monitors simply stay idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A Dijkstra–Scholten query (Phase I spread).
    Query,
    /// A Dijkstra–Scholten reply (Phase I signal).
    Reply,
    /// A Phase II move order relayed along child pointers.
    Move,
    /// A §3.2.5 "existing" heartbeat.
    Heartbeat,
}

impl MsgKind {
    /// The wire name used in the `"kind"` field.
    pub fn as_str(self) -> &'static str {
        match self {
            MsgKind::Query => "query",
            MsgKind::Reply => "reply",
            MsgKind::Move => "move",
            MsgKind::Heartbeat => "heartbeat",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "query" => Ok(MsgKind::Query),
            "reply" => Ok(MsgKind::Reply),
            "move" => Ok(MsgKind::Move),
            "heartbeat" => Ok(MsgKind::Heartbeat),
            other => Err(format!("unknown msg kind {other:?}")),
        }
    }
}

/// One observable occurrence in a simulator run.
///
/// Positions are recorded as coordinate vectors so the event type stays
/// independent of the grid dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message was accepted for delivery at simulation time `t`.
    MsgSent {
        /// Send time.
        t: u64,
        /// Sender process.
        from: usize,
        /// Recipient process.
        to: usize,
        /// Protocol classification, when the network has a classifier.
        kind: Option<MsgKind>,
    },
    /// A message was handed to its recipient.
    MsgDelivered {
        /// Delivery time.
        t: u64,
        /// Sender process.
        from: usize,
        /// Recipient process.
        to: usize,
        /// Delivery time minus send time.
        delay: u64,
        /// Protocol classification, when the network has a classifier.
        kind: Option<MsgKind>,
    },
    /// A message will never arrive.
    MsgDropped {
        /// Time the loss was decided.
        t: u64,
        /// Sender process.
        from: usize,
        /// Recipient process.
        to: usize,
        /// Why it was lost.
        reason: DropReason,
        /// Protocol classification, when the network has a classifier.
        kind: Option<MsgKind>,
    },
    /// The driver released job number `seq` at `pos`.
    JobArrived {
        /// Release time.
        t: u64,
        /// Zero-based arrival index.
        seq: u64,
        /// Job position.
        pos: Vec<i64>,
    },
    /// Job number `seq` was served by `vehicle` for `cost` energy.
    JobServed {
        /// Service time.
        t: u64,
        /// Zero-based arrival index.
        seq: u64,
        /// Serving vehicle.
        vehicle: usize,
        /// Energy charged (walk + 1).
        cost: u64,
    },
    /// A Dijkstra–Scholten replacement search began.
    DiffusionStarted {
        /// Start time.
        t: u64,
        /// Initiating vehicle.
        initiator: usize,
        /// The initiator's computation generation.
        generation: u64,
    },
    /// A replacement search terminated at its initiator.
    DiffusionCompleted {
        /// Termination time.
        t: u64,
        /// Initiating vehicle.
        initiator: usize,
        /// The initiator's computation generation.
        generation: u64,
        /// Whether an idle vehicle was found.
        found: bool,
    },
    /// A summoned vehicle arrived and activated (Phase I + II complete).
    ReplacementCycle {
        /// Arrival time.
        t: u64,
        /// The relocated vehicle.
        vehicle: usize,
        /// Where it now serves.
        dest: Vec<i64>,
        /// Manhattan distance walked (energy charged for the relocation).
        dist: u64,
    },
    /// A watcher's monitored peer went silent past the heartbeat timeout.
    HeartbeatMissed {
        /// Detection time (watcher-local tick round).
        t: u64,
        /// The vehicle that noticed.
        watcher: usize,
        /// The silent peer.
        peer: usize,
    },
    /// The driver provisioned the fleet: one vehicle per grid vertex, each
    /// with battery capacity `W`. Emitted once at simulation start so trace
    /// consumers can run the energy-conservation monitor without being told
    /// `W` out of band.
    FleetProvisioned {
        /// Provisioning time (simulation start, normally 0).
        t: u64,
        /// Fleet size (process ids are `0..vehicles`).
        vehicles: u64,
        /// Per-vehicle battery capacity `W`.
        capacity: u64,
    },
    /// A process was crashed by failure injection; it must emit nothing and
    /// receive nothing from this point on.
    ProcessCrashed {
        /// Crash time.
        t: u64,
        /// The crashed process.
        proc: usize,
    },
    /// A named wall-clock span (phase timing), in nanoseconds since the
    /// process observability epoch ([`crate::now_ns`]).
    PhaseSpan {
        /// Phase name, e.g. `"alg1.coarsen"`.
        name: String,
        /// Span start.
        start_ns: u64,
        /// Span end.
        end_ns: u64,
    },
    /// One flight-recorder sample: where worker `worker` spent one lockstep
    /// round of wall-clock, captured by the engine coordinator at the
    /// barrier. Durations are signed so a corrupted (negative) value stays
    /// representable and is flagged by the `profile` monitor instead of
    /// failing to parse.
    RoundProfile {
        /// Zero-based lockstep round number.
        round: u64,
        /// Worker index (`0..workers`).
        worker: u64,
        /// Worker-pool size when the sample was taken.
        workers: u64,
        /// Wall-clock spent stepping shards this round.
        busy_ns: i64,
        /// Wall-clock parked at the round barrier.
        barrier_wait_ns: i64,
        /// Coordinator wall-clock spent k-way-merging shard streams.
        merge_ns: i64,
        /// Coordinator wall-clock spent inside `Sink::record`.
        sink_ns: i64,
        /// Protocol events merged out of this round.
        events: u64,
        /// Shards this worker stole from other deques this round.
        steals: u64,
    },
}

fn push_kind(out: &mut String, kind: &Option<MsgKind>) {
    if let Some(k) = kind {
        let _ = write!(out, ",\"kind\":\"{}\"", k.as_str());
    }
}

fn push_pos(out: &mut String, key: &str, pos: &[i64]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, c) in pos.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
}

impl Event {
    /// The event's schema tag (the `"ev"` field of its JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MsgSent { .. } => "msg_sent",
            Event::MsgDelivered { .. } => "msg_delivered",
            Event::MsgDropped { .. } => "msg_dropped",
            Event::JobArrived { .. } => "job_arrived",
            Event::JobServed { .. } => "job_served",
            Event::DiffusionStarted { .. } => "diffusion_started",
            Event::DiffusionCompleted { .. } => "diffusion_completed",
            Event::ReplacementCycle { .. } => "replacement_cycle",
            Event::HeartbeatMissed { .. } => "heartbeat_missed",
            Event::FleetProvisioned { .. } => "fleet_provisioned",
            Event::ProcessCrashed { .. } => "process_crashed",
            Event::PhaseSpan { .. } => "phase_span",
            Event::RoundProfile { .. } => "round_profile",
        }
    }

    /// The event's global simulation timestamp, when it carries one.
    ///
    /// `heartbeat_missed` is stamped in watcher-local tick rounds,
    /// `phase_span` in wall-clock nanoseconds, and `round_profile` in
    /// lockstep rounds; none of them lives on the global simulation clock,
    /// so all return `None` (and are exactly the events the clock monitor
    /// exempts).
    pub fn time(&self) -> Option<u64> {
        match self {
            Event::MsgSent { t, .. }
            | Event::MsgDelivered { t, .. }
            | Event::MsgDropped { t, .. }
            | Event::JobArrived { t, .. }
            | Event::JobServed { t, .. }
            | Event::DiffusionStarted { t, .. }
            | Event::DiffusionCompleted { t, .. }
            | Event::ReplacementCycle { t, .. }
            | Event::FleetProvisioned { t, .. }
            | Event::ProcessCrashed { t, .. } => Some(*t),
            Event::HeartbeatMissed { .. }
            | Event::PhaseSpan { .. }
            | Event::RoundProfile { .. } => None,
        }
    }

    /// Renders the event as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"ev\":\"{}\"", self.kind());
        match self {
            Event::MsgSent { t, from, to, kind } => {
                let _ = write!(s, ",\"t\":{t},\"from\":{from},\"to\":{to}");
                push_kind(&mut s, kind);
            }
            Event::MsgDelivered {
                t,
                from,
                to,
                delay,
                kind,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"from\":{from},\"to\":{to},\"delay\":{delay}"
                );
                push_kind(&mut s, kind);
            }
            Event::MsgDropped {
                t,
                from,
                to,
                reason,
                kind,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"from\":{from},\"to\":{to},\"reason\":\"{}\"",
                    reason.as_str()
                );
                push_kind(&mut s, kind);
            }
            Event::JobArrived { t, seq, pos } => {
                let _ = write!(s, ",\"t\":{t},\"seq\":{seq}");
                push_pos(&mut s, "pos", pos);
            }
            Event::JobServed {
                t,
                seq,
                vehicle,
                cost,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"seq\":{seq},\"vehicle\":{vehicle},\"cost\":{cost}"
                );
            }
            Event::DiffusionStarted {
                t,
                initiator,
                generation,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"initiator\":{initiator},\"generation\":{generation}"
                );
            }
            Event::DiffusionCompleted {
                t,
                initiator,
                generation,
                found,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"initiator\":{initiator},\"generation\":{generation},\"found\":{found}"
                );
            }
            Event::ReplacementCycle {
                t,
                vehicle,
                dest,
                dist,
            } => {
                let _ = write!(s, ",\"t\":{t},\"vehicle\":{vehicle}");
                push_pos(&mut s, "dest", dest);
                let _ = write!(s, ",\"dist\":{dist}");
            }
            Event::HeartbeatMissed { t, watcher, peer } => {
                let _ = write!(s, ",\"t\":{t},\"watcher\":{watcher},\"peer\":{peer}");
            }
            Event::FleetProvisioned {
                t,
                vehicles,
                capacity,
            } => {
                let _ = write!(
                    s,
                    ",\"t\":{t},\"vehicles\":{vehicles},\"capacity\":{capacity}"
                );
            }
            Event::ProcessCrashed { t, proc } => {
                let _ = write!(s, ",\"t\":{t},\"proc\":{proc}");
            }
            Event::PhaseSpan {
                name,
                start_ns,
                end_ns,
            } => {
                // Phase names are workspace-chosen identifiers; escape the
                // two characters that could break the quoting anyway.
                let escaped: String = name
                    .chars()
                    .flat_map(|c| match c {
                        '"' => vec!['\\', '"'],
                        '\\' => vec!['\\', '\\'],
                        c => vec![c],
                    })
                    .collect();
                let _ = write!(
                    s,
                    ",\"name\":\"{escaped}\",\"start_ns\":{start_ns},\"end_ns\":{end_ns}"
                );
            }
            Event::RoundProfile {
                round,
                worker,
                workers,
                busy_ns,
                barrier_wait_ns,
                merge_ns,
                sink_ns,
                events,
                steals,
            } => {
                let _ = write!(
                    s,
                    ",\"round\":{round},\"worker\":{worker},\"workers\":{workers},\"busy_ns\":{busy_ns},\"barrier_wait_ns\":{barrier_wait_ns},\"merge_ns\":{merge_ns},\"sink_ns\":{sink_ns},\"events\":{events},\"steals\":{steals}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed construct.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.get_str("ev")?;
        let ev = match kind {
            "msg_sent" => Event::MsgSent {
                t: fields.get_u64("t")?,
                from: fields.get_u64("from")? as usize,
                to: fields.get_u64("to")? as usize,
                kind: fields.get_kind_opt()?,
            },
            "msg_delivered" => Event::MsgDelivered {
                t: fields.get_u64("t")?,
                from: fields.get_u64("from")? as usize,
                to: fields.get_u64("to")? as usize,
                delay: fields.get_u64("delay")?,
                kind: fields.get_kind_opt()?,
            },
            "msg_dropped" => Event::MsgDropped {
                t: fields.get_u64("t")?,
                from: fields.get_u64("from")? as usize,
                to: fields.get_u64("to")? as usize,
                reason: match fields.get_str("reason")? {
                    "lost" => DropReason::Lost,
                    "crashed" => DropReason::RecipientCrashed,
                    other => return Err(format!("unknown drop reason {other:?}")),
                },
                kind: fields.get_kind_opt()?,
            },
            "job_arrived" => Event::JobArrived {
                t: fields.get_u64("t")?,
                seq: fields.get_u64("seq")?,
                pos: fields.get_arr("pos")?,
            },
            "job_served" => Event::JobServed {
                t: fields.get_u64("t")?,
                seq: fields.get_u64("seq")?,
                vehicle: fields.get_u64("vehicle")? as usize,
                cost: fields.get_u64("cost")?,
            },
            "diffusion_started" => Event::DiffusionStarted {
                t: fields.get_u64("t")?,
                initiator: fields.get_u64("initiator")? as usize,
                generation: fields.get_u64("generation")?,
            },
            "diffusion_completed" => Event::DiffusionCompleted {
                t: fields.get_u64("t")?,
                initiator: fields.get_u64("initiator")? as usize,
                generation: fields.get_u64("generation")?,
                found: fields.get_bool("found")?,
            },
            "replacement_cycle" => Event::ReplacementCycle {
                t: fields.get_u64("t")?,
                vehicle: fields.get_u64("vehicle")? as usize,
                dest: fields.get_arr("dest")?,
                // `dist` joined the schema in v2; pre-v2 traces omit it.
                dist: fields.get_u64_or("dist", 0)?,
            },
            "heartbeat_missed" => Event::HeartbeatMissed {
                t: fields.get_u64("t")?,
                watcher: fields.get_u64("watcher")? as usize,
                peer: fields.get_u64("peer")? as usize,
            },
            "fleet_provisioned" => Event::FleetProvisioned {
                t: fields.get_u64("t")?,
                vehicles: fields.get_u64("vehicles")?,
                capacity: fields.get_u64("capacity")?,
            },
            "process_crashed" => Event::ProcessCrashed {
                t: fields.get_u64("t")?,
                proc: fields.get_u64("proc")? as usize,
            },
            "phase_span" => Event::PhaseSpan {
                name: fields.get_str("name")?.to_string(),
                start_ns: fields.get_u64("start_ns")?,
                end_ns: fields.get_u64("end_ns")?,
            },
            "round_profile" => Event::RoundProfile {
                round: fields.get_u64("round")?,
                worker: fields.get_u64("worker")?,
                workers: fields.get_u64("workers")?,
                busy_ns: fields.get_i64("busy_ns")?,
                barrier_wait_ns: fields.get_i64("barrier_wait_ns")?,
                merge_ns: fields.get_i64("merge_ns")?,
                sink_ns: fields.get_i64("sink_ns")?,
                events: fields.get_u64("events")?,
                steals: fields.get_u64("steals")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(ev)
    }
}

/// A parsed flat-JSON value (the schema uses no nesting beyond integer
/// arrays).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(i128),
    Str(String),
    Bool(bool),
    Arr(Vec<i64>),
}

#[derive(Debug, Default)]
struct Fields {
    entries: Vec<(String, Value)>,
}

impl Fields {
    fn get(&self, key: &str) -> Result<&Value, String> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Value::Num(n) if *n >= 0 && *n <= u64::MAX as i128 => Ok(*n as u64),
            other => Err(format!("field {key:?} is not a u64: {other:?}")),
        }
    }

    /// Signed duration fields (`round_profile` nanoseconds): negatives are
    /// *representable* here so the `profile` monitor — not the parser — is
    /// what rejects a corrupted sample.
    fn get_i64(&self, key: &str) -> Result<i64, String> {
        match self.get(key)? {
            Value::Num(n) if *n >= i64::MIN as i128 && *n <= i64::MAX as i128 => Ok(*n as i64),
            other => Err(format!("field {key:?} is not an i64: {other:?}")),
        }
    }

    /// Like [`Fields::get_u64`] but falls back to `default` when the field
    /// is absent (still rejects present-but-malformed values).
    fn get_u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.entries.iter().any(|(k, _)| k == key) {
            self.get_u64(key)
        } else {
            Ok(default)
        }
    }

    /// The optional `"kind"` message classification.
    fn get_kind_opt(&self) -> Result<Option<MsgKind>, String> {
        if self.entries.iter().any(|(k, _)| k == "kind") {
            MsgKind::parse(self.get_str("kind")?).map(Some)
        } else {
            Ok(None)
        }
    }

    fn get_str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("field {key:?} is not a bool: {other:?}")),
        }
    }

    fn get_arr(&self, key: &str) -> Result<Vec<i64>, String> {
        match self.get(key)? {
            Value::Arr(a) => Ok(a.clone()),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }
}

/// Hand-rolled parser for the flat object lines this crate emits:
/// `{"key":value,...}` where values are integers, quoted strings (with
/// `\"`/`\\` escapes), `true`/`false`, or arrays of integers.
fn parse_flat_object(line: &str) -> Result<Fields, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {s:?}"))?;
    let mut fields = Fields::default();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        skip_ws(&mut chars);
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        // Value.
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some('[') => {
                chars.next();
                let mut arr = Vec::new();
                loop {
                    skip_ws(&mut chars);
                    match chars.peek() {
                        Some(']') => {
                            chars.next();
                            break;
                        }
                        Some(',') => {
                            chars.next();
                        }
                        Some(_) => {
                            let n = parse_number(&mut chars)?;
                            arr.push(i64::try_from(n).map_err(|_| "array element out of i64")?);
                        }
                        None => return Err("unterminated array".into()),
                    }
                }
                Value::Arr(arr)
            }
            Some('t') | Some('f') => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap());
                }
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    other => return Err(format!("bad literal {other:?}")),
                }
            }
            Some(_) => Value::Num(parse_number(&mut chars)?),
            None => return Err(format!("missing value for key {key:?}")),
        };
        fields.entries.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} between fields")),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected string".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some(c @ ('"' | '\\')) => out.push(c),
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<i128, String> {
    let mut text = String::new();
    if chars.peek() == Some(&'-') {
        text.push('-');
        chars.next();
    }
    while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
        text.push(chars.next().unwrap());
    }
    text.parse::<i128>()
        .map_err(|_| format!("bad number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::MsgSent {
                t: 3,
                from: 1,
                to: 2,
                kind: None,
            },
            Event::MsgSent {
                t: 3,
                from: 1,
                to: 2,
                kind: Some(MsgKind::Query),
            },
            Event::MsgDelivered {
                t: 5,
                from: 1,
                to: 2,
                delay: 2,
                kind: None,
            },
            Event::MsgDelivered {
                t: 5,
                from: 1,
                to: 2,
                delay: 2,
                kind: Some(MsgKind::Reply),
            },
            Event::MsgDropped {
                t: 5,
                from: 0,
                to: 9,
                reason: DropReason::Lost,
                kind: Some(MsgKind::Heartbeat),
            },
            Event::MsgDropped {
                t: 6,
                from: 0,
                to: 9,
                reason: DropReason::RecipientCrashed,
                kind: None,
            },
            Event::JobArrived {
                t: 9,
                seq: 0,
                pos: vec![5, -5],
            },
            Event::JobServed {
                t: 9,
                seq: 0,
                vehicle: 60,
                cost: 1,
            },
            Event::DiffusionStarted {
                t: 10,
                initiator: 60,
                generation: 0,
            },
            Event::DiffusionCompleted {
                t: 14,
                initiator: 60,
                generation: 0,
                found: true,
            },
            Event::ReplacementCycle {
                t: 15,
                vehicle: 61,
                dest: vec![5, 5],
                dist: 3,
            },
            Event::HeartbeatMissed {
                t: 20,
                watcher: 3,
                peer: 4,
            },
            Event::FleetProvisioned {
                t: 0,
                vehicles: 144,
                capacity: 40,
            },
            Event::ProcessCrashed { t: 7, proc: 11 },
            Event::PhaseSpan {
                name: "alg1.coarsen".into(),
                start_ns: 12,
                end_ns: 456,
            },
            Event::RoundProfile {
                round: 42,
                worker: 1,
                workers: 2,
                busy_ns: 120_000,
                barrier_wait_ns: 3_000,
                merge_ns: 900,
                sink_ns: 450,
                events: 17,
                steals: 2,
            },
        ]
    }

    #[test]
    fn json_roundtrip_every_variant() {
        for ev in samples() {
            let line = ev.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line was {line}");
        }
    }

    #[test]
    fn json_is_single_line_flat_object() {
        for ev in samples() {
            let line = ev.to_json();
            assert!(!line.contains('\n'));
            assert!(line.starts_with("{\"ev\":\""));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn escaped_span_name_roundtrips() {
        let ev = Event::PhaseSpan {
            name: "we\"ird\\name".into(),
            start_ns: 0,
            end_ns: 1,
        };
        assert_eq!(Event::from_json(&ev.to_json()).unwrap(), ev);
    }

    #[test]
    fn parse_tolerates_whitespace() {
        let ev =
            Event::from_json(" {\"ev\": \"msg_sent\", \"t\": 1, \"from\": 2, \"to\": 3} ").unwrap();
        assert_eq!(
            ev,
            Event::MsgSent {
                t: 1,
                from: 2,
                to: 3,
                kind: None,
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"ev\":\"wat\"}").is_err());
        assert!(Event::from_json("{\"ev\":\"msg_sent\",\"t\":1}").is_err()); // missing fields
        assert!(Event::from_json("{\"ev\":\"msg_sent\",\"t\":-1,\"from\":0,\"to\":0}").is_err());
        // A present-but-unknown kind is malformed, not ignored.
        assert!(Event::from_json(
            "{\"ev\":\"msg_sent\",\"t\":1,\"from\":0,\"to\":1,\"kind\":\"telegram\"}"
        )
        .is_err());
    }

    #[test]
    fn pre_v2_replacement_cycle_still_parses() {
        // Traces recorded before `dist` joined the schema default it to 0.
        let ev = Event::from_json(
            "{\"ev\":\"replacement_cycle\",\"t\":15,\"vehicle\":61,\"dest\":[5,5]}",
        )
        .unwrap();
        assert_eq!(
            ev,
            Event::ReplacementCycle {
                t: 15,
                vehicle: 61,
                dest: vec![5, 5],
                dist: 0,
            }
        );
    }

    #[test]
    fn negative_profile_duration_parses_for_the_checker() {
        // A corrupted flight-recorder sample must reach the `profile`
        // monitor rather than die in the parser.
        let ev = Event::RoundProfile {
            round: 0,
            worker: 0,
            workers: 1,
            busy_ns: -5,
            barrier_wait_ns: 0,
            merge_ns: 0,
            sink_ns: 0,
            events: 0,
            steals: 0,
        };
        assert_eq!(Event::from_json(&ev.to_json()).unwrap(), ev);
        assert_eq!(ev.time(), None);
    }

    #[test]
    fn kind_matches_wire_tag() {
        for ev in samples() {
            assert!(ev.to_json().contains(&format!("\"ev\":\"{}\"", ev.kind())));
        }
    }
}
