//! Filter expressions over trace events — the language behind
//! `cmvrp trace query` and the `--where` flag of the trace analyzers.
//!
//! A query is a boolean combination of field comparisons, e.g.
//!
//! ```text
//! kind=delivered and proc=7 and t>=12
//! kind=served and cost>3 or not msg=heartbeat
//! t in 12..40 and (from=0 or to=0)
//! ```
//!
//! ## Grammar (EBNF)
//!
//! ```text
//! expr   := or
//! or     := and { "or" and }
//! and    := unary { "and" unary }
//! unary  := "not" unary | "(" expr ")" | cmp
//! cmp    := field comparator value
//!         | field "in" number ".." number     (* t in a..b  ≡  t>=a and t<b *)
//! comparator := "=" | "!=" | "<" | "<=" | ">" | ">="
//! value  := number | word
//! ```
//!
//! Words are `[A-Za-z_][A-Za-z0-9_.-]*` (dots allowed, so span names like
//! `alg1.coarsen` need no quoting); numbers are unsigned decimal integers.
//!
//! ## Fields
//!
//! *Name-valued* (only `=` and `!=`):
//!
//! | field | meaning |
//! |---|---|
//! | `kind` | the event's schema tag; the part after the last `_` is accepted as an alias (`delivered` ≡ `msg_delivered`, `served` ≡ `job_served`) |
//! | `msg` | the protocol classification of a message event: `query`, `reply`, `move`, `heartbeat` |
//! | `reason` | a drop's reason: `lost`, `crashed` |
//! | `name` | a phase span's name |
//! | `found` | a completion's outcome: `true`, `false` |
//!
//! *Numeric* (all comparators): `t`/`time`, `proc` (matches **any**
//! process mentioned by the event — sender, recipient, vehicle, initiator,
//! watcher, peer), `from`, `to`, `seq`, `vehicle`, `initiator`, `watcher`,
//! `peer`, `delay`, `cost`, `dist`, `generation`, `round`, `worker`,
//! `workers`, `vehicles`, `capacity`, `steals`.
//!
//! A comparison never matches an event that lacks the field (`delay>2`
//! ignores everything but deliveries); use `not` to invert that, e.g.
//! `not msg=heartbeat` also keeps events that carry no `msg` at all.
//!
//! Malformed expressions are rejected with a [`QueryError`] carrying the
//! 1-based column of the offending token and a message naming what was
//! expected there.

use crate::event::{Event, MsgKind};
use std::fmt;

/// A parse failure, anchored to where in the input it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// 1-based byte column of the offending token (one past the end of
    /// the input when it ended too early).
    pub col: usize,
    /// What was found and what was expected instead.
    pub msg: String,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error at col {}: {}", self.col, self.msg)
    }
}

impl std::error::Error for QueryError {}

/// A comparison's right-hand side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer literal.
    Num(u64),
    /// Bare word (event kinds, message kinds, span names, `true`/`false`).
    Word(String),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn holds(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A parsed filter expression; build one with [`parse_query`], evaluate
/// with [`Expr::matches`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `field op value`
    Cmp {
        /// Field name (validated against the catalog at parse time).
        field: String,
        /// Comparator.
        op: CmpOp,
        /// Right-hand side.
        value: Value,
    },
    /// Both sides must match.
    And(Box<Expr>, Box<Expr>),
    /// Either side must match.
    Or(Box<Expr>, Box<Expr>),
    /// The inner expression must not match.
    Not(Box<Expr>),
}

/// Name-valued fields (compared with `=`/`!=` against a word).
const NAME_FIELDS: [&str; 5] = ["kind", "msg", "reason", "name", "found"];

/// Numeric fields (all comparators).
const NUM_FIELDS: [&str; 19] = [
    "t",
    "time",
    "proc",
    "from",
    "to",
    "seq",
    "vehicle",
    "initiator",
    "watcher",
    "peer",
    "delay",
    "cost",
    "dist",
    "generation",
    "round",
    "worker",
    "workers",
    "vehicles",
    "capacity",
];

fn is_name_field(field: &str) -> bool {
    NAME_FIELDS.contains(&field)
}

fn is_num_field(field: &str) -> bool {
    NUM_FIELDS.contains(&field) || field == "steals"
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Num(u64),
    Op(CmpOp),
    LPar,
    RPar,
    DotDot,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("word {w:?}"),
            Tok::Num(n) => format!("number {n}"),
            Tok::Op(op) => format!("operator {:?}", op.as_str()),
            Tok::LPar => "\"(\"".into(),
            Tok::RPar => "\")\"".into(),
            Tok::DotDot => "\"..\"".into(),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, QueryError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let col = i + 1;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((col, Tok::LPar));
                i += 1;
            }
            b')' => {
                toks.push((col, Tok::RPar));
                i += 1;
            }
            b'=' => {
                toks.push((col, Tok::Op(CmpOp::Eq)));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((col, Tok::Op(CmpOp::Ne)));
                    i += 2;
                } else {
                    return Err(QueryError {
                        col,
                        msg: "expected \"!=\" (lone \"!\" is not an operator; use \"not\")".into(),
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((col, Tok::Op(CmpOp::Le)));
                    i += 2;
                } else {
                    toks.push((col, Tok::Op(CmpOp::Lt)));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((col, Tok::Op(CmpOp::Ge)));
                    i += 2;
                } else {
                    toks.push((col, Tok::Op(CmpOp::Gt)));
                    i += 1;
                }
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    toks.push((col, Tok::DotDot));
                    i += 2;
                } else {
                    return Err(QueryError {
                        col,
                        msg: "expected \"..\" (a range is written `field in a..b`)".into(),
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n = text.parse::<u64>().map_err(|_| QueryError {
                    col,
                    msg: format!("number {text:?} does not fit in 64 bits"),
                })?;
                toks.push((col, Tok::Num(n)));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                // Dots join a word ("alg1.coarsen") unless doubled (a range).
                while i < bytes.len() {
                    let c = bytes[i];
                    let word_char = c.is_ascii_alphanumeric() || c == b'_' || c == b'-';
                    let lone_dot = c == b'.' && bytes.get(i + 1) != Some(&b'.');
                    if word_char || lone_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((col, Tok::Word(input[start..i].to_string())));
            }
            other => {
                return Err(QueryError {
                    col,
                    msg: format!(
                        "unexpected character {:?}; expected a field name, operator, \
                         number, or parenthesis",
                        other as char
                    ),
                });
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    /// Column one past the end of the input, for "input ended" errors.
    end_col: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, expected: &str) -> QueryError {
        match self.peek() {
            Some((col, tok)) => QueryError {
                col: *col,
                msg: format!("expected {expected}, found {}", tok.describe()),
            },
            None => QueryError {
                col: self.end_col,
                msg: format!("expected {expected}, but the expression ended"),
            },
        }
    }

    fn expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some((_, Tok::Word(w))) if w == "or") {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some((_, Tok::Word(w))) if w == "and") {
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, QueryError> {
        match self.peek() {
            Some((_, Tok::Word(w))) if w == "not" => {
                self.next();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some((_, Tok::LPar)) => {
                self.next();
                let inner = self.expr()?;
                if matches!(self.peek(), Some((_, Tok::RPar))) {
                    self.next();
                    Ok(inner)
                } else {
                    Err(self.err_here("closing \")\""))
                }
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Expr, QueryError> {
        let (field_col, field) = match self.next() {
            Some((col, Tok::Word(w))) => (col, w),
            Some((col, tok)) => {
                return Err(QueryError {
                    col,
                    msg: format!(
                        "expected a field name (e.g. kind, proc, t), found {}",
                        tok.describe()
                    ),
                })
            }
            None => {
                return Err(QueryError {
                    col: self.end_col,
                    msg: "expected a field name (e.g. kind, proc, t), but the expression ended"
                        .into(),
                })
            }
        };
        let name_field = is_name_field(&field);
        if !name_field && !is_num_field(&field) {
            return Err(QueryError {
                col: field_col,
                msg: format!(
                    "unknown field {field:?}; name fields: {}; numeric fields: {}, steals",
                    NAME_FIELDS.join(", "),
                    NUM_FIELDS.join(", ")
                ),
            });
        }
        // Range sugar: `field in a..b` ≡ `field >= a and field < b`.
        if matches!(self.peek(), Some((_, Tok::Word(w))) if w == "in") {
            let (in_col, _) = self.next().unwrap();
            if name_field {
                return Err(QueryError {
                    col: in_col,
                    msg: format!(
                        "field {field:?} is name-valued; \"in\" ranges need a numeric field"
                    ),
                });
            }
            let lo = self.number("a range start after \"in\"")?;
            match self.next() {
                Some((_, Tok::DotDot)) => {}
                Some((col, tok)) => {
                    return Err(QueryError {
                        col,
                        msg: format!("expected \"..\" in range, found {}", tok.describe()),
                    })
                }
                None => {
                    return Err(QueryError {
                        col: self.end_col,
                        msg: "expected \"..\" in range, but the expression ended".into(),
                    })
                }
            }
            let hi = self.number("a range end after \"..\"")?;
            return Ok(Expr::And(
                Box::new(Expr::Cmp {
                    field: field.clone(),
                    op: CmpOp::Ge,
                    value: Value::Num(lo),
                }),
                Box::new(Expr::Cmp {
                    field,
                    op: CmpOp::Lt,
                    value: Value::Num(hi),
                }),
            ));
        }
        let op = match self.next() {
            Some((_, Tok::Op(op))) => op,
            Some((col, tok)) => {
                return Err(QueryError {
                    col,
                    msg: format!(
                        "expected a comparison operator (=, !=, <, <=, >, >=) or \"in\" \
                         after field {field:?}, found {}",
                        tok.describe()
                    ),
                })
            }
            None => {
                return Err(QueryError {
                    col: self.end_col,
                    msg: format!(
                        "expected a comparison operator (=, !=, <, <=, >, >=) or \"in\" \
                         after field {field:?}, but the expression ended"
                    ),
                })
            }
        };
        let value = match self.next() {
            Some((col, Tok::Num(n))) => {
                if name_field {
                    return Err(QueryError {
                        col,
                        msg: format!("field {field:?} compares against a word, not a number"),
                    });
                }
                Value::Num(n)
            }
            Some((col, Tok::Word(w))) => {
                if !name_field {
                    return Err(QueryError {
                        col,
                        msg: format!("field {field:?} compares against a number, not {w:?}"),
                    });
                }
                Value::Word(w)
            }
            Some((col, tok)) => {
                return Err(QueryError {
                    col,
                    msg: format!(
                        "expected a value after {:?}, found {}",
                        op.as_str(),
                        tok.describe()
                    ),
                })
            }
            None => {
                return Err(QueryError {
                    col: self.end_col,
                    msg: format!(
                        "expected a value after {:?}, but the expression ended",
                        op.as_str()
                    ),
                })
            }
        };
        if name_field && !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            return Err(QueryError {
                col: field_col,
                msg: format!(
                    "field {field:?} is name-valued and only supports = and !=, not {:?}",
                    op.as_str()
                ),
            });
        }
        Ok(Expr::Cmp { field, op, value })
    }

    fn number(&mut self, what: &str) -> Result<u64, QueryError> {
        match self.peek() {
            Some((_, Tok::Num(n))) => {
                let n = *n;
                self.next();
                Ok(n)
            }
            _ => Err(self.err_here(what)),
        }
    }
}

/// Parses a filter expression. See the [module docs](self) for the
/// grammar and field catalog.
///
/// # Errors
///
/// Returns a [`QueryError`] with the 1-based column of the first
/// offending token and the token that was expected there.
pub fn parse_query(input: &str) -> Result<Expr, QueryError> {
    let toks = tokenize(input)?;
    if toks.is_empty() {
        return Err(QueryError {
            col: 1,
            msg: "empty expression; expected a field comparison like kind=served".into(),
        });
    }
    let mut parser = Parser {
        toks,
        pos: 0,
        end_col: input.len() + 1,
    };
    let expr = parser.expr()?;
    if let Some((col, tok)) = parser.peek() {
        return Err(QueryError {
            col: *col,
            msg: format!(
                "unexpected trailing {}; expected \"and\", \"or\", or the end of the expression",
                tok.describe()
            ),
        });
    }
    Ok(expr)
}

/// Pushes every numeric value the event carries for `field`.
fn numeric_values(ev: &Event, field: &str, out: &mut Vec<u64>) {
    match field {
        "t" | "time" => {
            if let Some(t) = ev.time() {
                out.push(t);
            } else if let Event::HeartbeatMissed { t, .. } = ev {
                // Watcher-local rounds still answer `t` queries; the global
                // clock monitor exempts them, the filter need not.
                out.push(*t);
            }
        }
        "proc" => match ev {
            Event::MsgSent { from, to, .. }
            | Event::MsgDelivered { from, to, .. }
            | Event::MsgDropped { from, to, .. } => {
                out.push(*from as u64);
                out.push(*to as u64);
            }
            Event::JobServed { vehicle, .. } | Event::ReplacementCycle { vehicle, .. } => {
                out.push(*vehicle as u64);
            }
            Event::DiffusionStarted { initiator, .. }
            | Event::DiffusionCompleted { initiator, .. } => out.push(*initiator as u64),
            Event::HeartbeatMissed { watcher, peer, .. } => {
                out.push(*watcher as u64);
                out.push(*peer as u64);
            }
            Event::ProcessCrashed { proc, .. } => out.push(*proc as u64),
            _ => {}
        },
        "from" => match ev {
            Event::MsgSent { from, .. }
            | Event::MsgDelivered { from, .. }
            | Event::MsgDropped { from, .. } => out.push(*from as u64),
            _ => {}
        },
        "to" => match ev {
            Event::MsgSent { to, .. }
            | Event::MsgDelivered { to, .. }
            | Event::MsgDropped { to, .. } => out.push(*to as u64),
            _ => {}
        },
        "seq" => match ev {
            Event::JobArrived { seq, .. } | Event::JobServed { seq, .. } => out.push(*seq),
            _ => {}
        },
        "vehicle" => match ev {
            Event::JobServed { vehicle, .. } | Event::ReplacementCycle { vehicle, .. } => {
                out.push(*vehicle as u64)
            }
            _ => {}
        },
        "initiator" => match ev {
            Event::DiffusionStarted { initiator, .. }
            | Event::DiffusionCompleted { initiator, .. } => out.push(*initiator as u64),
            _ => {}
        },
        "watcher" => {
            if let Event::HeartbeatMissed { watcher, .. } = ev {
                out.push(*watcher as u64);
            }
        }
        "peer" => {
            if let Event::HeartbeatMissed { peer, .. } = ev {
                out.push(*peer as u64);
            }
        }
        "delay" => {
            if let Event::MsgDelivered { delay, .. } = ev {
                out.push(*delay);
            }
        }
        "cost" => {
            if let Event::JobServed { cost, .. } = ev {
                out.push(*cost);
            }
        }
        "dist" => {
            if let Event::ReplacementCycle { dist, .. } = ev {
                out.push(*dist);
            }
        }
        "generation" => match ev {
            Event::DiffusionStarted { generation, .. }
            | Event::DiffusionCompleted { generation, .. } => out.push(*generation),
            _ => {}
        },
        "round" => {
            if let Event::RoundProfile { round, .. } = ev {
                out.push(*round);
            }
        }
        "worker" => {
            if let Event::RoundProfile { worker, .. } = ev {
                out.push(*worker);
            }
        }
        "workers" => {
            if let Event::RoundProfile { workers, .. } = ev {
                out.push(*workers);
            }
        }
        "vehicles" => {
            if let Event::FleetProvisioned { vehicles, .. } = ev {
                out.push(*vehicles);
            }
        }
        "capacity" => {
            if let Event::FleetProvisioned { capacity, .. } = ev {
                out.push(*capacity);
            }
        }
        "steals" => {
            if let Event::RoundProfile { steals, .. } = ev {
                out.push(*steals);
            }
        }
        _ => {}
    }
}

/// The event's value for a name field, when it carries one.
fn name_value(ev: &Event, field: &str) -> Option<String> {
    match field {
        "kind" => Some(ev.kind().to_string()),
        "msg" => {
            let kind: &Option<MsgKind> = match ev {
                Event::MsgSent { kind, .. }
                | Event::MsgDelivered { kind, .. }
                | Event::MsgDropped { kind, .. } => kind,
                _ => &None,
            };
            kind.map(|k| k.as_str().to_string())
        }
        "reason" => {
            if let Event::MsgDropped { reason, .. } = ev {
                Some(
                    match reason {
                        crate::event::DropReason::Lost => "lost",
                        crate::event::DropReason::RecipientCrashed => "crashed",
                    }
                    .to_string(),
                )
            } else {
                None
            }
        }
        "name" => {
            if let Event::PhaseSpan { name, .. } = ev {
                Some(name.clone())
            } else {
                None
            }
        }
        "found" => {
            if let Event::DiffusionCompleted { found, .. } = ev {
                Some(if *found { "true" } else { "false" }.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

impl Expr {
    /// Whether the event satisfies the expression. A bare comparison never
    /// matches an event that lacks the field (see the module docs).
    pub fn matches(&self, ev: &Event) -> bool {
        match self {
            Expr::And(a, b) => a.matches(ev) && b.matches(ev),
            Expr::Or(a, b) => a.matches(ev) || b.matches(ev),
            Expr::Not(inner) => !inner.matches(ev),
            Expr::Cmp { field, op, value } => match value {
                Value::Word(want) => {
                    let Some(have) = name_value(ev, field) else {
                        return false;
                    };
                    let eq = if field == "kind" {
                        // Accept the full tag or its last-underscore suffix:
                        // `delivered` ≡ `msg_delivered`.
                        have == *want || have.rsplit('_').next() == Some(want.as_str())
                    } else {
                        have == *want
                    };
                    match op {
                        CmpOp::Eq => eq,
                        CmpOp::Ne => !eq,
                        // Ordering on name fields is rejected at parse time.
                        _ => false,
                    }
                }
                Value::Num(want) => {
                    let mut values = Vec::with_capacity(2);
                    numeric_values(ev, field, &mut values);
                    values.iter().any(|&have| op.holds(have, *want))
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(t: u64, seq: u64, vehicle: usize, cost: u64) -> Event {
        Event::JobServed {
            t,
            seq,
            vehicle,
            cost,
        }
    }

    #[test]
    fn example_from_docs_matches() {
        let q = parse_query("kind=delivered and proc=7 and t>=12").unwrap();
        let hit = Event::MsgDelivered {
            t: 12,
            from: 7,
            to: 3,
            delay: 2,
            kind: None,
        };
        assert!(q.matches(&hit));
        let wrong_proc = Event::MsgDelivered {
            t: 12,
            from: 1,
            to: 3,
            delay: 2,
            kind: None,
        };
        assert!(!q.matches(&wrong_proc));
        assert!(!q.matches(&served(12, 0, 7, 1)));
    }

    #[test]
    fn proc_matches_any_process_field() {
        let q = parse_query("proc=9").unwrap();
        assert!(q.matches(&Event::MsgSent {
            t: 0,
            from: 2,
            to: 9,
            kind: None
        }));
        assert!(q.matches(&Event::HeartbeatMissed {
            t: 0,
            watcher: 9,
            peer: 1
        }));
        assert!(!q.matches(&Event::JobArrived {
            t: 0,
            seq: 9, // a seq, not a process
            pos: vec![0, 0],
        }));
    }

    #[test]
    fn range_sugar_is_half_open() {
        let q = parse_query("t in 5..8").unwrap();
        assert!(!q.matches(&served(4, 0, 0, 1)));
        assert!(q.matches(&served(5, 0, 0, 1)));
        assert!(q.matches(&served(7, 0, 0, 1)));
        assert!(!q.matches(&served(8, 0, 0, 1)));
    }

    #[test]
    fn not_and_or_with_parens() {
        let q = parse_query("not (kind=served or kind=arrived)").unwrap();
        assert!(!q.matches(&served(0, 0, 0, 1)));
        assert!(q.matches(&Event::ProcessCrashed { t: 1, proc: 2 }));
        // Precedence: and binds tighter than or.
        let q = parse_query("kind=served and cost>2 or kind=crashed").unwrap();
        assert!(q.matches(&served(0, 0, 0, 3)));
        assert!(!q.matches(&served(0, 0, 0, 1)));
        assert!(q.matches(&Event::ProcessCrashed { t: 1, proc: 2 }));
    }

    #[test]
    fn missing_field_never_matches_bare_comparison() {
        let q = parse_query("delay>0").unwrap();
        assert!(!q.matches(&served(0, 0, 0, 1)));
        let q = parse_query("msg!=heartbeat").unwrap();
        // No msg annotation at all: != is still field-present-and-differs.
        assert!(!q.matches(&Event::MsgSent {
            t: 0,
            from: 0,
            to: 1,
            kind: None
        }));
        // `not` is how you include field-less events.
        let q = parse_query("not msg=heartbeat").unwrap();
        assert!(q.matches(&Event::MsgSent {
            t: 0,
            from: 0,
            to: 1,
            kind: None
        }));
    }

    #[test]
    fn span_names_with_dots_need_no_quoting() {
        let q = parse_query("name=alg1.coarsen").unwrap();
        assert!(q.matches(&Event::PhaseSpan {
            name: "alg1.coarsen".into(),
            start_ns: 0,
            end_ns: 1,
        }));
    }

    #[test]
    fn errors_carry_column_and_expectation() {
        let err = parse_query("kind=").unwrap_err();
        assert_eq!(err.col, 6);
        assert!(err.msg.contains("expected a value"), "{err}");

        let err = parse_query("bogus=3").unwrap_err();
        assert_eq!(err.col, 1);
        assert!(err.msg.contains("unknown field"), "{err}");
        assert!(err.msg.contains("proc"), "{err}");

        let err = parse_query("t >> 3").unwrap_err();
        assert!(err.msg.contains("expected a value"), "{err}");

        let err = parse_query("(t=1").unwrap_err();
        assert_eq!(err.col, 5);
        assert!(err.msg.contains("closing"), "{err}");

        let err = parse_query("t=1 kind=served").unwrap_err();
        assert_eq!(err.col, 5);
        assert!(err.msg.contains("trailing"), "{err}");

        let err = parse_query("kind<served").unwrap_err();
        assert!(err.msg.contains("only supports"), "{err}");

        let err = parse_query("t=served").unwrap_err();
        assert!(err.msg.contains("number"), "{err}");

        let err = parse_query("").unwrap_err();
        assert!(err.msg.contains("empty"), "{err}");
    }
}
