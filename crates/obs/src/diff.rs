//! Semantic trace diff: localize the *first divergence* between two runs.
//!
//! The engine's headline guarantee is a canonical `(time, shard, seq)`
//! merged trace, byte-identical across every (schedule × workers ×
//! checked) combination. When that breaks — or when two runs of the same
//! instance are compared on purpose — a byte-level `cmp` only says *that*
//! they differ. [`diff_lines`] says *where* (line/frame number and the
//! simulation-time band), *which event*, and *why*, classifying the first
//! divergence into a small taxonomy:
//!
//! - **Payload drift** — the streams carry the same event kind at the
//!   divergence point but with different field values; the report lists
//!   each differing field with both values.
//! - **Reordered** — the streams carry the *same multiset* of events
//!   within one simulation-time band, permuted. A pure reordering is a
//!   determinism bug in the merge, not a behavioral difference, and the
//!   report says so.
//! - **Event set** — the streams genuinely contain different events from
//!   the divergence point; the first differing event of each side is
//!   shown.
//! - **Truncated** — one stream is a strict prefix of the other.
//!
//! The comparison is lockstep and streaming: memory is O(context window
//! plus current time band), never O(trace). Both inputs are canonical JSONL
//! text — the sniffing loader ([`crate::load`]) already normalizes binary
//! traces, so line numbers here are frame numbers there.

use crate::event::Event;
use std::collections::VecDeque;
use std::fmt;

/// A scoped failure while diffing: which input, which line, what broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffError {
    /// Which input the bad line came from.
    pub side: Side,
    /// 1-based line number.
    pub line: usize,
    /// The parse error.
    pub msg: String,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {}, line {}: {}",
            self.side.name(),
            self.line,
            self.msg
        )
    }
}

impl std::error::Error for DiffError {}

/// Names the two inputs of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first trace.
    A,
    /// The second trace.
    B,
}

impl Side {
    /// `"A"` or `"B"`.
    pub fn name(self) -> &'static str {
        match self {
            Side::A => "A",
            Side::B => "B",
        }
    }
}

/// One differing field of a same-kind event pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDelta {
    /// Field name.
    pub field: String,
    /// Raw JSON value in trace A (`"<absent>"` when missing).
    pub a: String,
    /// Raw JSON value in trace B.
    pub b: String,
}

/// Why the traces diverged — see the [module docs](self) for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Same event kind, different payload.
    PayloadDrift {
        /// The shared event kind.
        kind: String,
        /// Every field whose value differs.
        fields: Vec<FieldDelta>,
    },
    /// Same multiset of events within the time band, permuted.
    Reordered {
        /// The simulation-time band that was permuted.
        t: u64,
        /// Events remaining in the band from the divergence point.
        band_len: usize,
    },
    /// Genuinely different events from the divergence point on.
    EventSet {
        /// Kind of trace A's event at the divergence point.
        a_kind: String,
        /// Kind of trace B's event at the divergence point.
        b_kind: String,
    },
    /// One trace ended while the other continued.
    Truncated {
        /// The side that has more events.
        longer: Side,
        /// How many extra events it has.
        extra: usize,
    },
}

/// The first divergence, with context windows from both traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line (JSONL) / frame (binary) number of the first
    /// difference; for truncation, the first line the shorter side lacks.
    pub line: usize,
    /// The simulation-time band the divergence falls in, when the events
    /// there carry one (the "round" of the run).
    pub time: Option<u64>,
    /// Classification.
    pub kind: DivergenceKind,
    /// Up to `context` lines before through `context` lines after the
    /// divergence in trace A, as `(line number, text)`.
    pub context_a: Vec<(usize, String)>,
    /// The same window from trace B.
    pub context_b: Vec<(usize, String)>,
}

/// Outcome of a [`diff_lines`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// Events that matched before the divergence (the whole trace when
    /// identical).
    pub matched: usize,
    /// The first divergence, or `None` when the traces agree event for
    /// event.
    pub divergence: Option<Divergence>,
}

impl DiffReport {
    /// Whether the traces carry the same event sequence.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// One side's stream state: numbered non-blank lines, a ring buffer of
/// recently consumed lines, one-line lookahead, and a bounded after-mark
/// log for context-window capture.
struct Stream<'a, I: Iterator<Item = &'a str>> {
    lines: std::iter::Enumerate<I>,
    peeked: Option<(usize, &'a str)>,
    /// Recently consumed lines, oldest first (bounded by `context + 1`).
    recent: VecDeque<(usize, &'a str)>,
    /// Snapshot of `recent` at [`Stream::mark`] — the "before" half of
    /// the context window, ending with the divergence line.
    pre: Vec<(usize, &'a str)>,
    /// The first `context` lines consumed after the mark.
    log: Vec<(usize, &'a str)>,
    logging: bool,
    context: usize,
    side: Side,
}

impl<'a, I: Iterator<Item = &'a str>> Stream<'a, I> {
    fn new(lines: I, context: usize, side: Side) -> Self {
        Stream {
            lines: lines.enumerate(),
            peeked: None,
            recent: VecDeque::with_capacity(context + 2),
            pre: Vec::new(),
            log: Vec::new(),
            logging: false,
            context,
            side,
        }
    }

    /// The next non-blank line without consuming it.
    fn peek(&mut self) -> Option<(usize, &'a str)> {
        if self.peeked.is_none() {
            for (i, line) in self.lines.by_ref() {
                if !line.trim().is_empty() {
                    self.peeked = Some((i + 1, line));
                    break;
                }
            }
        }
        self.peeked
    }

    /// Consumes the next non-blank line, remembering it for context.
    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let item = self.peek()?;
        self.peeked = None;
        if self.recent.len() > self.context {
            self.recent.pop_front();
        }
        self.recent.push_back(item);
        if self.logging && self.log.len() < self.context {
            self.log.push(item);
        }
        Some(item)
    }

    fn parse(&self, item: (usize, &'a str)) -> Result<Event, DiffError> {
        Event::from_json(item.1).map_err(|msg| DiffError {
            side: self.side,
            line: item.0,
            msg,
        })
    }

    /// Anchors the context window here: everything consumed so far (up to
    /// `context + 1` lines, ending with the just-consumed divergence
    /// line) is the "before" half; the next `context` consumed lines
    /// become the "after" half, however they are consumed.
    fn mark(&mut self) {
        self.pre = self.recent.iter().copied().collect();
        self.log.clear();
        self.logging = true;
    }

    /// Completes the window started by [`Stream::mark`], pulling more
    /// lines if classification consumed fewer than `context` of them.
    fn take_window(&mut self) -> Vec<(usize, String)> {
        while self.log.len() < self.context && self.next_line().is_some() {}
        self.logging = false;
        self.pre
            .iter()
            .chain(self.log.iter())
            .map(|(n, l)| (*n, (*l).to_string()))
            .collect()
    }

    /// Consumes every immediately following event in time band `t`,
    /// returning their texts (`seed`, the already-consumed divergence
    /// line, leads the band).
    fn drain_band(&mut self, t: u64, seed: &'a str) -> Result<Vec<&'a str>, DiffError> {
        let mut band = vec![seed];
        while let Some(item) = self.peek() {
            let ev = self.parse(item)?;
            if ev.time() == Some(t) {
                self.next_line();
                band.push(item.1);
            } else {
                break;
            }
        }
        Ok(band)
    }
}

/// Splits a canonical flat-JSON event line into raw `(key, value)` pairs.
/// Values keep their exact JSON spelling so the field report shows what
/// the trace shows. Returns `None` for lines this simple splitter cannot
/// handle (the caller then falls back to a whole-line report).
fn split_fields(line: &str) -> Option<Vec<(String, String)>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Key: a quoted string.
        if bytes[i] != b'"' {
            return None;
        }
        let key_start = i + 1;
        let mut j = key_start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        if j >= bytes.len() {
            return None;
        }
        let key = inner[key_start..j].to_string();
        i = j + 1;
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        // Value: scan to the next top-level comma, respecting strings
        // (with escapes) and integer arrays.
        let val_start = i;
        let mut depth = 0usize;
        let mut in_str = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_str {
                if b == b'\\' {
                    i += 1;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push((key, inner[val_start..i].to_string()));
        i += 1; // past the comma (or the end)
    }
    Some(fields)
}

/// Field-by-field comparison of two same-kind event lines.
fn field_deltas(a: &str, b: &str) -> Vec<FieldDelta> {
    const ABSENT: &str = "<absent>";
    let (Some(fa), Some(fb)) = (split_fields(a), split_fields(b)) else {
        return vec![FieldDelta {
            field: "<line>".into(),
            a: a.to_string(),
            b: b.to_string(),
        }];
    };
    let mut deltas = Vec::new();
    for (key, va) in &fa {
        match fb.iter().find(|(k, _)| k == key) {
            Some((_, vb)) if vb == va => {}
            Some((_, vb)) => deltas.push(FieldDelta {
                field: key.clone(),
                a: va.clone(),
                b: vb.clone(),
            }),
            None => deltas.push(FieldDelta {
                field: key.clone(),
                a: va.clone(),
                b: ABSENT.into(),
            }),
        }
    }
    for (key, vb) in &fb {
        if !fa.iter().any(|(k, _)| k == key) {
            deltas.push(FieldDelta {
                field: key.clone(),
                a: ABSENT.into(),
                b: vb.clone(),
            });
        }
    }
    deltas
}

/// Compares two canonical JSONL event streams lockstep and localizes the
/// first divergence; see the [module docs](self) for the taxonomy.
/// `context` is the ± window of surrounding lines captured from each
/// trace (memory stays O(context + band)).
///
/// # Errors
///
/// Returns a [`DiffError`] for the first unparseable line of either
/// input. Byte-identical prefixes are *not* parsed (the fast path is a
/// string compare); parsing starts at the first textual difference.
pub fn diff_lines<'a, A, B>(a: A, b: B, context: usize) -> Result<DiffReport, DiffError>
where
    A: Iterator<Item = &'a str>,
    B: Iterator<Item = &'a str>,
{
    let mut sa = Stream::new(a, context, Side::A);
    let mut sb = Stream::new(b, context, Side::B);
    let mut matched = 0usize;
    loop {
        match (sa.peek(), sb.peek()) {
            (None, None) => {
                return Ok(DiffReport {
                    matched,
                    divergence: None,
                })
            }
            (Some(_), None) | (None, Some(_)) => {
                let (longer, line) = match sa.peek() {
                    Some((n, _)) => (Side::A, n),
                    None => (Side::B, sb.peek().expect("one side non-empty").0),
                };
                sa.mark();
                sb.mark();
                // Drain the longer side to count the extras; the first
                // `context` of them land in its window log.
                let mut extra = 0usize;
                loop {
                    let more = match longer {
                        Side::A => sa.next_line().is_some(),
                        Side::B => sb.next_line().is_some(),
                    };
                    if !more {
                        break;
                    }
                    extra += 1;
                }
                return Ok(DiffReport {
                    matched,
                    divergence: Some(Divergence {
                        line,
                        time: None,
                        kind: DivergenceKind::Truncated { longer, extra },
                        context_a: sa.take_window(),
                        context_b: sb.take_window(),
                    }),
                });
            }
            (Some((la, ta)), Some((lb, tb))) => {
                if ta == tb {
                    sa.next_line();
                    sb.next_line();
                    matched += 1;
                    continue;
                }
                // First textual difference: parse both sides, anchor the
                // context windows at the diverging lines, and classify.
                let ev_a = sa.parse((la, ta))?;
                let ev_b = sb.parse((lb, tb))?;
                sa.next_line();
                sb.next_line();
                sa.mark();
                sb.mark();
                let (t_a, t_b) = (ev_a.time(), ev_b.time());
                let time = t_a.or(t_b);
                let kind = if let (Some(t), true) = (t_a, t_a == t_b) {
                    // Same time band on both sides: a permutation of the
                    // band is reordering, anything else falls through.
                    // The band prefix before this point matched byte for
                    // byte, so comparing band suffixes from here on is
                    // exact.
                    let band_a = sa.drain_band(t, ta)?;
                    let band_b = sb.drain_band(t, tb)?;
                    let mut sorted_a = band_a.clone();
                    let mut sorted_b = band_b.clone();
                    sorted_a.sort_unstable();
                    sorted_b.sort_unstable();
                    if sorted_a == sorted_b {
                        Some(DivergenceKind::Reordered {
                            t,
                            band_len: band_a.len(),
                        })
                    } else {
                        None
                    }
                } else {
                    None
                };
                let kind = kind.unwrap_or_else(|| {
                    if ev_a.kind() == ev_b.kind() {
                        DivergenceKind::PayloadDrift {
                            kind: ev_a.kind().to_string(),
                            fields: field_deltas(ta, tb),
                        }
                    } else {
                        DivergenceKind::EventSet {
                            a_kind: ev_a.kind().to_string(),
                            b_kind: ev_b.kind().to_string(),
                        }
                    }
                });
                return Ok(DiffReport {
                    matched,
                    divergence: Some(Divergence {
                        line: la,
                        time,
                        kind,
                        context_a: sa.take_window(),
                        context_b: sb.take_window(),
                    }),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str) -> impl Iterator<Item = &str> {
        text.lines()
    }

    const BASE: &str = "{\"ev\":\"fleet_provisioned\",\"t\":0,\"vehicles\":4,\"capacity\":10}\n\
        {\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n\
        {\"ev\":\"job_served\",\"t\":1,\"seq\":0,\"vehicle\":2,\"cost\":1}\n\
        {\"ev\":\"job_arrived\",\"t\":2,\"seq\":1,\"pos\":[1,0]}\n\
        {\"ev\":\"job_served\",\"t\":2,\"seq\":1,\"vehicle\":3,\"cost\":1}\n";

    #[test]
    fn identical_traces_report_identical() {
        let report = diff_lines(lines(BASE), lines(BASE), 3).unwrap();
        assert!(report.is_identical());
        assert_eq!(report.matched, 5);
    }

    #[test]
    fn payload_drift_names_line_round_and_fields() {
        let mutated = BASE.replace("\"vehicle\":2", "\"vehicle\":9");
        let report = diff_lines(lines(BASE), lines(&mutated), 2).unwrap();
        let d = report.divergence.unwrap();
        assert_eq!(d.line, 3);
        assert_eq!(d.time, Some(1));
        assert_eq!(report.matched, 2);
        match &d.kind {
            DivergenceKind::PayloadDrift { kind, fields } => {
                assert_eq!(kind, "job_served");
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].field, "vehicle");
                assert_eq!(fields[0].a, "2");
                assert_eq!(fields[0].b, "9");
            }
            other => panic!("expected payload drift, got {other:?}"),
        }
        // Context covers the divergence line plus the window each way.
        assert!(d.context_a.iter().any(|(n, _)| *n == 3));
        assert!(d.context_a.iter().any(|(n, _)| *n == 1));
        assert!(d.context_b.iter().any(|(n, _)| *n == 5));
    }

    #[test]
    fn reordering_within_a_time_band_is_distinguished() {
        // Swap the two t=1 events of the band (arrival before serve is
        // not checked here — the diff only compares the streams).
        let swapped = "{\"ev\":\"fleet_provisioned\",\"t\":0,\"vehicles\":4,\"capacity\":10}\n\
            {\"ev\":\"job_served\",\"t\":1,\"seq\":0,\"vehicle\":2,\"cost\":1}\n\
            {\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n\
            {\"ev\":\"job_arrived\",\"t\":2,\"seq\":1,\"pos\":[1,0]}\n\
            {\"ev\":\"job_served\",\"t\":2,\"seq\":1,\"vehicle\":3,\"cost\":1}\n";
        let report = diff_lines(lines(BASE), lines(swapped), 1).unwrap();
        let d = report.divergence.unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.time, Some(1));
        match d.kind {
            DivergenceKind::Reordered { t, band_len } => {
                assert_eq!(t, 1);
                assert_eq!(band_len, 2);
            }
            other => panic!("expected reordering, got {other:?}"),
        }
    }

    #[test]
    fn different_events_are_an_event_set_divergence() {
        let changed = BASE.replace(
            "{\"ev\":\"job_served\",\"t\":1,\"seq\":0,\"vehicle\":2,\"cost\":1}",
            "{\"ev\":\"process_crashed\",\"t\":1,\"proc\":2}",
        );
        let report = diff_lines(lines(BASE), lines(&changed), 1).unwrap();
        let d = report.divergence.unwrap();
        match d.kind {
            DivergenceKind::EventSet { a_kind, b_kind } => {
                assert_eq!(a_kind, "job_served");
                assert_eq!(b_kind, "process_crashed");
            }
            other => panic!("expected event-set divergence, got {other:?}"),
        }
    }

    #[test]
    fn truncation_names_the_longer_side_and_extra_count() {
        let short: String = BASE.lines().take(3).map(|l| format!("{l}\n")).collect();
        let report = diff_lines(lines(&short), lines(BASE), 2).unwrap();
        let d = report.divergence.unwrap();
        assert_eq!(d.line, 4);
        match d.kind {
            DivergenceKind::Truncated { longer, extra } => {
                assert_eq!(longer, Side::B);
                assert_eq!(extra, 2);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(report.matched, 3);
        // The longer side's window shows what the shorter side lacks.
        assert!(d.context_b.iter().any(|(n, _)| *n == 4));
        assert!(d.context_b.iter().any(|(n, _)| *n == 5));
    }

    #[test]
    fn same_kind_different_band_is_payload_drift_on_t() {
        let shifted = BASE.replace(
            "{\"ev\":\"job_arrived\",\"t\":2,\"seq\":1,\"pos\":[1,0]}",
            "{\"ev\":\"job_arrived\",\"t\":3,\"seq\":1,\"pos\":[1,0]}",
        );
        let report = diff_lines(lines(BASE), lines(&shifted), 1).unwrap();
        let d = report.divergence.unwrap();
        match &d.kind {
            DivergenceKind::PayloadDrift { fields, .. } => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].field, "t");
            }
            other => panic!("expected payload drift, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_divergent_line_is_a_scoped_error() {
        let broken = BASE.replace(
            "{\"ev\":\"job_served\",\"t\":1,\"seq\":0,\"vehicle\":2,\"cost\":1}",
            "not json at all",
        );
        let e = diff_lines(lines(BASE), lines(&broken), 1).unwrap_err();
        assert_eq!(e.side, Side::B);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn blank_lines_are_skipped_but_numbering_is_kept() {
        let padded = BASE.replace(
            "{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n",
            "{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n\n",
        );
        // Same event sequence, one blank line inserted: still identical.
        let report = diff_lines(lines(BASE), lines(&padded), 1).unwrap();
        assert!(report.is_identical());
        // A mutation after the blank line reports the *physical* line.
        let mutated = padded.replace("\"vehicle\":2", "\"vehicle\":9");
        let report = diff_lines(lines(BASE), lines(&mutated), 1).unwrap();
        let d = report.divergence.unwrap();
        assert_eq!(d.line, 3); // line number in trace A
        assert!(d.context_b.iter().any(|(n, _)| *n == 4)); // physical in B
    }

    #[test]
    fn split_fields_handles_strings_arrays_and_escapes() {
        let fields =
            split_fields("{\"ev\":\"phase_span\",\"name\":\"a,\\\"b[\",\"pos\":[1,-2],\"t\":3}")
                .unwrap();
        assert_eq!(
            fields,
            vec![
                ("ev".to_string(), "\"phase_span\"".to_string()),
                ("name".to_string(), "\"a,\\\"b[\"".to_string()),
                ("pos".to_string(), "[1,-2]".to_string()),
                ("t".to_string(), "3".to_string()),
            ]
        );
    }
}
