//! A tiny metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! The registry is cheap enough to stay always-on in the simulators
//! (updates are one `BTreeMap` lookup plus integer arithmetic) and renders
//! to `(name, value)` rows so callers can format it however they like —
//! the CLI feeds the rows to `cmvrp_util::Table`.

use std::collections::BTreeMap;

/// A histogram over `u64` observations with fixed bucket upper bounds plus
/// an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// `counts[i]` observations fell in bucket `i`; the last entry is the
    /// overflow bucket (`> bounds.last()`).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

/// Default bucket bounds: powers of two up to 4096 — a good fit for
/// message delays, queue depths, and per-vehicle energies alike.
pub const DEFAULT_BUCKETS: [u64; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

impl Histogram {
    /// Creates a histogram with the given inclusive bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest bucket bound at or below which at least a `q` fraction
    /// of observations fall (an upper estimate of the `q`-quantile;
    /// `u64::MAX` stands in for the overflow bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// The raw per-bucket counts, including the trailing overflow bucket
    /// (`len == bounds.len() + 1`). Together with [`Histogram::count`],
    /// [`Histogram::sum`], and [`Histogram::max`] this is the histogram's
    /// full durable state, used by the checkpoint subsystem.
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Overwrites the histogram's accumulated state with counts captured
    /// from [`Histogram::raw_counts`] on an identically bucketed
    /// histogram, plus the matching `count`/`sum`/`max` totals.
    ///
    /// # Panics
    ///
    /// Panics if `counts` has the wrong length for this bucketing.
    pub fn restore_state(&mut self, counts: &[u64], count: u64, sum: u128, max: u64) {
        assert_eq!(
            counts.len(),
            self.counts.len(),
            "restoring {} bucket counts into a histogram with {} buckets",
            counts.len(),
            self.counts.len()
        );
        self.counts.copy_from_slice(counts);
        self.count = count;
        self.sum = sum;
        self.max = max;
    }

    /// Iterates `(inclusive upper bound, count)` pairs; the final pair uses
    /// `u64::MAX` for the overflow bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// # Examples
///
/// ```
/// use cmvrp_obs::Metrics;
///
/// let mut m = Metrics::new();
/// m.inc("net.msgs_sent");
/// m.add("net.msgs_sent", 2);
/// m.observe("net.msg_delay", 3);
/// assert_eq!(m.counter("net.msgs_sent"), 3);
/// assert_eq!(m.histogram("net.msg_delay").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments the counter `name` by 1 (creating it at 0).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `v` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, v: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += v,
            None => {
                self.counters.insert(name.to_string(), v);
            }
        }
    }

    /// Reads the counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Raises the gauge `name` to `v` if `v` is larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, v: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = (*g).max(v),
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Reads the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into the histogram `name` (created with
    /// [`DEFAULT_BUCKETS`] on first use).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.observe_with(name, v, &DEFAULT_BUCKETS);
    }

    /// Records `v` into the histogram `name`, creating it with the given
    /// bucket bounds on first use (later calls ignore `bounds`).
    pub fn observe_with(&mut self, name: &str, v: u64, bounds: &[u64]) {
        match self.hists.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::with_bounds(bounds);
                h.observe(v);
                self.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Reads the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Installs (replacing) a pre-built histogram under `name` — used by
    /// components that accumulate a histogram inline and snapshot it into a
    /// registry on demand.
    pub fn set_histogram(&mut self, name: &str, h: Histogram) {
        self.hists.insert(name.to_string(), h);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds every entry of `other` into `self` (counters add, gauges take
    /// the max, histograms require identical bounds and add bucket-wise).
    pub fn absorb(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => {
                    assert_eq!(mine.bounds, h.bounds, "histogram {k:?} bounds differ");
                    for (c, o) in mine.counts.iter_mut().zip(&h.counts) {
                        *c += o;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.max = mine.max.max(h.max);
                }
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry as sorted `(metric, value)` rows: one row per
    /// counter and gauge, and `count` / `mean` / `p99` / `max` rows per
    /// histogram.
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, h) in &self.hists {
            rows.push((format!("{k}.count"), h.count().to_string()));
            rows.push((format!("{k}.mean"), format!("{:.2}", h.mean())));
            let p99 = h.quantile(0.99);
            let p99 = if p99 == u64::MAX {
                format!(">{}", h.bounds.last().unwrap())
            } else {
                p99.to_string()
            };
            rows.push((format!("{k}.p99"), p99));
            rows.push((format!("{k}.max"), h.max().to_string()));
        }
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.inc("a");
        m.add("a", 4);
        m.gauge_set("g", 3);
        m.gauge_max("g", 1);
        m.gauge_max("g", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(7));
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::with_bounds(&[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.6).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (4, 1), (16, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn quantile_upper_estimates() {
        let mut h = Histogram::with_bounds(&[1, 2, 4, 8]);
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(100);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(Histogram::with_bounds(&[1]).quantile(0.5), 0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0 regardless of q.
        let empty = Histogram::with_bounds(&[1, 2, 4]);
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(1.0), 0);

        // q = 0.0 needs zero observations, so the first bucket bound —
        // even an empty one — already satisfies it.
        let mut h = Histogram::with_bounds(&[1, 2, 4]);
        h.observe(4);
        assert_eq!(h.quantile(0.0), 1);
        // q = 1.0 must cover every observation.
        assert_eq!(h.quantile(1.0), 4);

        // Single finite bucket: everything is either <= the bound or in
        // the overflow bucket reported as u64::MAX.
        let mut single = Histogram::with_bounds(&[10]);
        single.observe(3);
        assert_eq!(single.quantile(0.5), 10);
        assert_eq!(single.quantile(1.0), 10);
        single.observe(99);
        assert_eq!(single.quantile(1.0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "quantile out of [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = Histogram::with_bounds(&[1]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_rejected() {
        let _ = Histogram::with_bounds(&[2, 2]);
    }

    #[test]
    fn observe_creates_default_histogram() {
        let mut m = Metrics::new();
        m.observe("lat", 3);
        m.observe("lat", 5000); // overflow bucket
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn absorb_folds_everything() {
        let mut a = Metrics::new();
        a.add("c", 1);
        a.gauge_set("g", 2);
        a.observe("h", 1);
        let mut b = Metrics::new();
        b.add("c", 2);
        b.gauge_set("g", 9);
        b.observe("h", 3);
        b.observe("only_b", 7);
        a.absorb(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("only_b").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn absorb_rejects_mismatched_histogram_bounds() {
        let mut a = Metrics::new();
        a.observe_with("h", 1, &[1, 2, 4]);
        let mut b = Metrics::new();
        b.observe_with("h", 1, &[1, 2, 8]);
        a.absorb(&b);
    }

    #[test]
    fn rows_are_sorted_and_complete() {
        let mut m = Metrics::new();
        m.inc("z.count");
        m.gauge_set("a.depth", 4);
        m.observe("m.delay", 2);
        let rows = m.rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.contains(&"m.delay.mean"));
        assert!(names.contains(&"m.delay.p99"));
    }
}
