//! # cmvrp-obs — zero-dependency observability for the CMVRP simulators
//!
//! This crate provides the tracing, metrics, and structured event-log
//! layer used by `cmvrp-net`, `cmvrp-online`, `cmvrp-core`, and
//! `cmvrp-flow`. It deliberately depends on **nothing** outside `std`:
//! JSON is hand-rolled, sinks are plain structs, and the disabled path
//! ([`NullSink`]) monomorphizes away so instrumented simulators cost the
//! same as uninstrumented ones.
//!
//! ## Pieces
//!
//! - [`Event`] — the typed trace vocabulary (messages, jobs, diffusion
//!   lifecycle, replacement cycles, heartbeat misses, wall-clock phase
//!   spans).
//! - [`Sink`] — where events go: [`NullSink`] (default, free),
//!   [`RingSink`] (bounded in-memory tail, used by tests), [`JsonlSink`]
//!   (streaming JSON-lines file, used by `--trace-jsonl`).
//! - [`Metrics`] / [`Histogram`] — always-on counters, gauges, and
//!   fixed-bucket histograms (message latency, per-vehicle energy, queue
//!   depth).
//! - [`Span`] / [`now_ns`] — wall-clock phase timing for the offline
//!   algorithms.
//! - [`replay`] — rebuild a run's headline numbers from a trace alone
//!   (`cmvrp replay`).
//!
//! ## JSONL schema
//!
//! A trace is a sequence of lines; each line is one flat JSON object with
//! an `"ev"` tag naming its kind. All numbers are non-negative integers
//! except position coordinates, which may be negative. Positions are
//! arrays of integers (one per grid dimension). Simulation times `t` are
//! the discrete-event clock of `cmvrp-net`; `*_ns` fields are wall-clock
//! nanoseconds since the process observability epoch ([`now_ns`]).
//!
//! | `ev` | fields | meaning |
//! |---|---|---|
//! | `msg_sent` | `t, from, to` | message accepted for delivery |
//! | `msg_delivered` | `t, from, to, delay` | message handed to recipient; `delay = t - send time` |
//! | `msg_dropped` | `t, from, to, reason` | message lost; `reason` is `"lost"` (fault injection) or `"crashed"` (recipient dead) |
//! | `job_arrived` | `t, seq, pos` | driver released job `seq` at `pos` |
//! | `job_served` | `t, seq, vehicle, cost` | job served; `cost` is the energy charged |
//! | `diffusion_started` | `t, initiator, generation` | Dijkstra–Scholten replacement search began |
//! | `diffusion_completed` | `t, initiator, generation, found` | search terminated at its initiator |
//! | `replacement_cycle` | `t, vehicle, dest` | summoned vehicle arrived and activated at `dest` |
//! | `heartbeat_missed` | `t, watcher, peer` | monitored peer went silent past the timeout |
//! | `phase_span` | `name, start_ns, end_ns` | named wall-clock phase (e.g. `"alg1.coarsen"`) |
//!
//! Example lines:
//!
//! ```text
//! {"ev":"msg_sent","t":3,"from":1,"to":2}
//! {"ev":"msg_delivered","t":5,"from":1,"to":2,"delay":2}
//! {"ev":"job_arrived","t":9,"seq":0,"pos":[5,-5]}
//! {"ev":"phase_span","name":"alg1.coarsen","start_ns":12,"end_ns":456}
//! ```
//!
//! The schema is append-only: readers must ignore unknown fields, and new
//! event kinds may appear in later versions.
//!
//! ## Example
//!
//! ```
//! use cmvrp_obs::{Event, JsonlSink, Sink, replay};
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! sink.record(&Event::JobArrived { t: 1, seq: 0, pos: vec![3, 4] });
//! sink.record(&Event::JobServed { t: 1, seq: 0, vehicle: 9, cost: 1 });
//! let trace = sink.into_writer().unwrap();
//! let text = String::from_utf8(trace).unwrap();
//! let summary = replay::summarize(text.lines()).unwrap();
//! assert_eq!(summary.jobs_served, 1);
//! assert_eq!(summary.jobs_unserved(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod replay;
pub mod sink;
pub mod span;

pub use event::{DropReason, Event};
pub use metrics::{Histogram, Metrics, DEFAULT_BUCKETS};
pub use replay::{summarize, ReplaySummary};
pub use sink::{JsonlSink, NullSink, RingSink, Sink};
pub use span::{now_ns, Span};
