//! # cmvrp-obs — zero-dependency observability for the CMVRP simulators
//!
//! This crate provides the tracing, metrics, and structured event-log
//! layer used by `cmvrp-net`, `cmvrp-online`, `cmvrp-core`, and
//! `cmvrp-flow`. It deliberately depends on **nothing** outside `std`:
//! JSON is hand-rolled, sinks are plain structs, and the disabled path
//! ([`NullSink`]) monomorphizes away so instrumented simulators cost the
//! same as uninstrumented ones.
//!
//! ## Pieces
//!
//! - [`Event`] — the typed trace vocabulary (messages, jobs, diffusion
//!   lifecycle, replacement cycles, heartbeat misses, wall-clock phase
//!   spans).
//! - [`Sink`] — where events go: [`NullSink`] (default, free),
//!   [`RingSink`] (bounded in-memory tail, used by tests), [`JsonlSink`]
//!   (streaming JSON-lines file, used by `--trace-jsonl`), [`BinSink`]
//!   (streaming binary frames, used by `--trace-bin`; see [`bin`]),
//!   [`VecSink`] (unbounded buffer, used by the sharded engine's
//!   per-shard streams).
//! - [`Metrics`] / [`Histogram`] — always-on counters, gauges, and
//!   fixed-bucket histograms (message latency, per-vehicle energy, queue
//!   depth).
//! - [`Span`] / [`now_ns`] — wall-clock phase timing for the offline
//!   algorithms.
//! - [`replay`] — rebuild a run's headline numbers from a trace alone
//!   (`cmvrp replay`, `cmvrp trace stats`).
//! - [`check`] — streaming invariant monitors ([`TraceChecker`],
//!   [`CheckSink`]) that verify a run *obeyed the protocol*: energy ≤
//!   capacity `W`, per-channel FIFO with delivered⇒sent causality,
//!   Dijkstra–Scholten deficit counting, no activity after a crash,
//!   replacement-cycle liveness. See the [`check`] module docs for the
//!   full invariant catalog and the derived Lamport-clock semantics.
//!   With [`TraceChecker::record_causality`] it also builds a
//!   [`CausalIndex`] — the happens-before graph behind `cmvrp trace
//!   explain` and the causal chains attached to violations.
//! - [`load`] — the encoding-sniffing trace loader ([`load_trace`]):
//!   normalizes JSONL and binary files to canonical JSONL text with a
//!   scoped error for every truncation/corruption shape.
//! - [`diff`] — semantic trace comparison ([`diff_lines`]): localizes the
//!   first divergence between two runs and classifies it (payload drift /
//!   reordering within a time band / different event set / truncation).
//! - [`query`] — a small filter expression language over events
//!   ([`parse_query`]), e.g. `kind=delivered and proc=7 and time>=12`,
//!   powering `cmvrp trace query` and `--where` on the analyzers.
//!
//! ## JSONL schema
//!
//! A trace is a sequence of lines; each line is one flat JSON object with
//! an `"ev"` tag naming its kind. All numbers are non-negative integers
//! except position coordinates, which may be negative. Positions are
//! arrays of integers (one per grid dimension). Simulation times `t` are
//! the discrete-event clock of `cmvrp-net`; `*_ns` fields are wall-clock
//! nanoseconds since the process observability epoch ([`now_ns`]).
//!
//! | `ev` | fields | meaning |
//! |---|---|---|
//! | `msg_sent` | `t, from, to[, kind]` | message accepted for delivery |
//! | `msg_delivered` | `t, from, to, delay[, kind]` | message handed to recipient; `delay = t - send time` |
//! | `msg_dropped` | `t, from, to, reason[, kind]` | message lost; `reason` is `"lost"` (fault injection) or `"crashed"` (recipient dead) |
//! | `job_arrived` | `t, seq, pos` | driver released job `seq` at `pos` |
//! | `job_served` | `t, seq, vehicle, cost` | job served; `cost` is the energy charged |
//! | `diffusion_started` | `t, initiator, generation` | Dijkstra–Scholten replacement search began |
//! | `diffusion_completed` | `t, initiator, generation, found` | search terminated at its initiator |
//! | `replacement_cycle` | `t, vehicle, dest, dist` | summoned vehicle arrived and activated at `dest`; `dist` is the Manhattan distance walked (energy charged) |
//! | `heartbeat_missed` | `t, watcher, peer` | monitored peer went silent past the timeout (`t` is the watcher's tick-round clock, *not* simulation time) |
//! | `fleet_provisioned` | `t, vehicles, capacity` | fleet size and per-vehicle battery capacity `W` at startup |
//! | `process_crashed` | `t, proc` | process `proc` crashed (fault injection); silent afterwards |
//! | `phase_span` | `name, start_ns, end_ns` | named wall-clock phase (e.g. `"alg1.coarsen"`) |
//! | `round_profile` | `round, worker, workers, busy_ns, barrier_wait_ns, merge_ns, sink_ns, events, steals` | flight-recorder sample: one worker's wall-clock split for one lockstep round |
//!
//! The optional `kind` field, when the network has a message classifier,
//! tags transport events with their protocol role: `"query"`, `"reply"`,
//! `"move"`, or `"heartbeat"`. The Dijkstra–Scholten deficit monitor in
//! [`check`] needs it and stays idle on unannotated traces. There is no
//! Lamport-clock field in the trace: logical clocks are *derived* by
//! [`TraceChecker`] from send/deliver causality (see the [`check`]
//! module docs) and surfaced by `cmvrp trace timeline`.
//!
//! Example lines:
//!
//! ```text
//! {"ev":"msg_sent","t":3,"from":1,"to":2}
//! {"ev":"msg_delivered","t":5,"from":1,"to":2,"delay":2}
//! {"ev":"job_arrived","t":9,"seq":0,"pos":[5,-5]}
//! {"ev":"phase_span","name":"alg1.coarsen","start_ns":12,"end_ns":456}
//! ```
//!
//! The schema is append-only: readers must ignore unknown fields, and new
//! event kinds may appear in later versions.
//!
//! The same vocabulary also has a compact binary form ([`bin`]): a
//! magic/versioned header followed by length-prefixed varint frames,
//! written by [`BinSink`] and decoded by [`BinReader`]. `cmvrp trace
//! convert` translates between the two losslessly, and every trace
//! consumer sniffs the magic bytes to accept either encoding.
//!
//! ## Example
//!
//! ```
//! use cmvrp_obs::{Event, JsonlSink, Sink, replay};
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! sink.record(&Event::JobArrived { t: 1, seq: 0, pos: vec![3, 4] });
//! sink.record(&Event::JobServed { t: 1, seq: 0, vehicle: 9, cost: 1 });
//! let trace = sink.into_writer().unwrap();
//! let text = String::from_utf8(trace).unwrap();
//! let summary = replay::summarize(text.lines()).unwrap();
//! assert_eq!(summary.jobs_served, 1);
//! assert_eq!(summary.jobs_unserved(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bin;
pub mod check;
pub mod diff;
pub mod event;
pub mod load;
pub mod metrics;
pub mod query;
pub mod replay;
pub mod sink;
pub mod span;

pub use bin::{decode_trace, is_binary_trace, BinError, BinReader, BinSink};
pub use check::{
    check_lines, CausalIndex, CausalNode, CheckReport, CheckSink, MergeChecker, TraceChecker,
    Violation, INVARIANTS,
};
pub use diff::{diff_lines, DiffError, DiffReport, Divergence, DivergenceKind, FieldDelta, Side};
pub use event::{DropReason, Event, MsgKind};
pub use load::{
    load_trace, load_trace_bytes, LoadError, LoadedTrace, TraceEncoding, JSONL_SCHEMA_VERSION,
};
pub use metrics::{Histogram, Metrics, DEFAULT_BUCKETS};
pub use query::{parse_query, Expr as QueryExpr, QueryError};
pub use replay::{summarize, ReplaySummary};
pub use sink::{JsonlSink, NullSink, RingSink, Sink, StaticSink, VecSink};
pub use span::{now_ns, Span};
