//! Adversarial decoder tests for the binary trace format: [`BinReader`]
//! must return a *scoped* error — frame index plus byte offset — and never
//! panic, whatever bytes it is handed. Corruption is generated
//! deterministically (a hand-rolled LCG, no third-party fuzzer) so
//! failures replay exactly.

use cmvrp_obs::{decode_trace, is_binary_trace, BinReader, BinSink, DropReason, Event, MsgKind};
use cmvrp_obs::{Sink, StaticSink};

/// One event of every variant, with annotated and unannotated message
/// forms, negative coordinates, and an escaped span name.
fn samples() -> Vec<Event> {
    vec![
        Event::FleetProvisioned {
            t: 0,
            vehicles: 144,
            capacity: 40,
        },
        Event::MsgSent {
            t: 3,
            from: 1,
            to: 2,
            kind: None,
        },
        Event::MsgSent {
            t: 3,
            from: 1,
            to: 2,
            kind: Some(MsgKind::Query),
        },
        Event::MsgDelivered {
            t: 5,
            from: 1,
            to: 2,
            delay: 2,
            kind: Some(MsgKind::Reply),
        },
        Event::MsgDropped {
            t: 5,
            from: 0,
            to: 9,
            reason: DropReason::Lost,
            kind: Some(MsgKind::Heartbeat),
        },
        Event::MsgDropped {
            t: 6,
            from: 0,
            to: 9,
            reason: DropReason::RecipientCrashed,
            kind: None,
        },
        Event::JobArrived {
            t: 9,
            seq: 0,
            pos: vec![5, -5],
        },
        Event::JobServed {
            t: 9,
            seq: 0,
            vehicle: 60,
            cost: 1,
        },
        Event::DiffusionStarted {
            t: 10,
            initiator: 60,
            generation: 0,
        },
        Event::DiffusionCompleted {
            t: 14,
            initiator: 60,
            generation: 0,
            found: true,
        },
        Event::ReplacementCycle {
            t: 15,
            vehicle: 61,
            dest: vec![5, 5],
            dist: 3,
        },
        Event::HeartbeatMissed {
            t: 20,
            watcher: 3,
            peer: 4,
        },
        Event::ProcessCrashed { t: 7, proc: 11 },
        Event::PhaseSpan {
            name: "we\"ird\\name".into(),
            start_ns: 12,
            end_ns: 456,
        },
        Event::RoundProfile {
            round: 42,
            worker: 1,
            workers: 2,
            busy_ns: 120_000,
            barrier_wait_ns: -1,
            merge_ns: 900,
            sink_ns: 450,
            events: 17,
            steals: 2,
        },
    ]
}

fn encode(events: &[Event]) -> Vec<u8> {
    let mut sink = BinSink::new(Vec::new());
    for ev in events {
        sink.record(ev);
    }
    sink.flush_events();
    assert!(sink.is_enabled());
    const { assert!(<BinSink<Vec<u8>> as StaticSink>::ENABLED) };
    sink.into_writer().unwrap()
}

#[test]
fn every_variant_roundtrips() {
    let events = samples();
    let bytes = encode(&events);
    assert!(is_binary_trace(&bytes));
    assert_eq!(decode_trace(&bytes).unwrap(), events);
}

#[test]
fn jsonl_and_binary_encodings_agree() {
    // The convert path: JSONL line → Event → binary → Event → JSONL line
    // must reproduce the original line byte for byte.
    let lines: Vec<String> = samples().iter().map(Event::to_json).collect();
    let parsed: Vec<Event> = lines.iter().map(|l| Event::from_json(l).unwrap()).collect();
    let back = decode_trace(&encode(&parsed)).unwrap();
    let relines: Vec<String> = back.iter().map(Event::to_json).collect();
    assert_eq!(relines, lines);
}

#[test]
fn empty_trace_is_just_the_header() {
    let bytes = encode(&[]);
    assert_eq!(bytes.len(), 5);
    assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
}

#[test]
fn bad_magic_is_a_header_error() {
    let err = BinReader::new(b"NOPE\x01rest").unwrap_err();
    assert_eq!(err.frame, 0);
    assert_eq!(err.offset, 0);
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn truncated_header_is_a_header_error() {
    for n in 0..5 {
        let err = BinReader::new(&b"CMVB\x01"[..n]).unwrap_err();
        assert_eq!(err.frame, 0, "prefix of {n} bytes");
        assert!(err.to_string().contains("header"), "{err}");
    }
}

#[test]
fn future_version_is_refused_by_name() {
    let err = BinReader::new(b"CMVB\x63").unwrap_err();
    assert_eq!(err.frame, 0);
    assert_eq!(err.offset, 4);
    assert!(err.to_string().contains("version 99"), "{err}");
}

#[test]
fn every_truncation_errors_with_scope_and_never_panics() {
    let events = samples();
    let bytes = encode(&events);
    for n in 5..bytes.len() {
        let mut decoded = 0usize;
        let mut err = None;
        for item in BinReader::new(&bytes[..n]).unwrap() {
            match item {
                Ok(_) => decoded += 1,
                Err(e) => err = Some(e),
            }
        }
        // A cut can only land cleanly between frames (fewer events) or
        // inside one (scoped error); it can never invent events.
        assert!(decoded < events.len(), "prefix of {n} bytes");
        if let Some(e) = err {
            assert!(e.frame >= 1, "prefix of {n}: {e}");
            assert!(e.offset <= n, "prefix of {n}: {e}");
        }
    }
}

#[test]
fn corrupt_length_prefix_is_scoped_to_its_frame() {
    let events = samples();
    let bytes = encode(&events);
    // The first frame starts right after the 5-byte header; replace its
    // one-byte length prefix with a varint claiming ~2^62 bytes.
    let mut corrupt = bytes[..5].to_vec();
    corrupt.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f]);
    corrupt.extend_from_slice(&bytes[6..]);
    let err = decode_trace(&corrupt).unwrap_err();
    assert_eq!(err.frame, 1);
    assert_eq!(err.offset, 5);
    assert!(err.to_string().contains("exceeds remaining"), "{err}");

    // A zero-length frame is equally corrupt (every payload has a tag).
    let mut zero = bytes[..5].to_vec();
    zero.push(0);
    let err = decode_trace(&zero).unwrap_err();
    assert_eq!(err.frame, 1);
    assert!(err.to_string().contains("empty frame"), "{err}");
}

#[test]
fn unknown_tag_is_scoped_to_its_frame() {
    let bytes = encode(&samples()[..2]);
    let mut corrupt = bytes.clone();
    // Frame 1: [len][tag ...]; the tag is the byte after the 1-byte length.
    corrupt[6] = 0xEE;
    let err = decode_trace(&corrupt).unwrap_err();
    assert_eq!(err.frame, 1);
    assert!(err.to_string().contains("unknown event tag"), "{err}");
}

#[test]
fn errors_end_iteration_rather_than_looping() {
    let bytes = encode(&samples());
    let mut corrupt = bytes.clone();
    corrupt[6] = 0xEE; // first frame's tag
    let items: Vec<_> = BinReader::new(&corrupt).unwrap().collect();
    assert_eq!(items.len(), 1, "one scoped error, then the end");
    assert!(items[0].is_err());
}

/// Deterministic byte-flip fuzzing: whatever we do to the stream, the
/// reader must hand back values (events or scoped errors), never panic,
/// and every reported offset must lie inside the input.
#[test]
fn random_byte_flips_never_panic() {
    let events = samples();
    let clean = encode(&events);
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..2000 {
        let mut bytes = clean.clone();
        for _ in 0..=(rng() % 3) {
            let i = (rng() % bytes.len() as u64) as usize;
            bytes[i] ^= (rng() % 255 + 1) as u8;
        }
        match BinReader::new(&bytes) {
            Err(e) => {
                assert_eq!(e.frame, 0);
                assert!(e.offset <= bytes.len());
            }
            Ok(reader) => {
                for item in reader {
                    if let Err(e) = item {
                        assert!(e.frame >= 1, "{e}");
                        assert!(e.offset <= bytes.len(), "{e}");
                    }
                }
            }
        }
    }
}

/// Same discipline against truly arbitrary garbage, not flips of a valid
/// trace.
#[test]
fn random_garbage_never_panics() {
    let mut state: u64 = 42;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..2000 {
        let len = (rng() % 64) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| (rng() & 0xff) as u8).collect();
        // Half the time, give it a valid header so the frame scanner runs.
        if rng() % 2 == 0 && bytes.len() >= 5 {
            bytes[..4].copy_from_slice(b"CMVB");
            bytes[4] = 1;
        }
        if let Ok(reader) = BinReader::new(&bytes) {
            for item in reader {
                if let Err(e) = item {
                    assert!(e.offset <= bytes.len(), "{e}");
                }
            }
        }
    }
}
