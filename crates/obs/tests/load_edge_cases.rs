//! Edge cases for the encoding-sniffing trace loader: every truncation
//! and corruption shape must come back as a scoped [`LoadError`], never a
//! panic, both from bytes and through the filesystem path.

use cmvrp_obs::{load_trace, load_trace_bytes, TraceEncoding};

fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("cmvrp_obs_load_{name}"));
    std::fs::write(&path, bytes).unwrap();
    path
}

#[test]
fn zero_byte_file_is_a_scoped_error() {
    let err = load_trace_bytes(b"").unwrap_err();
    assert!(err.msg.contains("empty file"), "{}", err.msg);
    let path = tmp("empty.jsonl", b"");
    let err = load_trace(path.to_str().unwrap()).unwrap_err();
    // Through the path API the error is prefixed with the file name.
    assert!(err.msg.contains("empty.jsonl"), "{}", err.msg);
    assert!(err.msg.contains("empty file"), "{}", err.msg);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_shorter_than_the_magic_is_a_scoped_error() {
    // Every strict prefix of the CMVB magic: too short to classify as
    // binary, not valid JSONL either.
    for len in 1..4 {
        let err = load_trace_bytes(&b"CMVB"[..len]).unwrap_err();
        assert!(
            err.msg.contains("truncated binary trace"),
            "prefix len {len}: {}",
            err.msg
        );
    }
    let path = tmp("short.bin", b"CM");
    let err = load_trace(path.to_str().unwrap()).unwrap_err();
    assert!(err.msg.contains("truncated binary trace"), "{}", err.msg);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trailing_partial_line_is_a_scoped_error() {
    // A crash mid-write leaves an unterminated, unparseable last line.
    let bytes = b"{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}\n{\"ev\":\"job_ser";
    let err = load_trace_bytes(bytes).unwrap_err();
    assert!(err.msg.contains("line 2"), "{}", err.msg);
    assert!(err.msg.contains("trailing partial line"), "{}", err.msg);
    let path = tmp("partial.jsonl", bytes);
    let err = load_trace(path.to_str().unwrap()).unwrap_err();
    assert!(err.msg.contains("partial.jsonl"), "{}", err.msg);
    assert!(err.msg.contains("line 2"), "{}", err.msg);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unterminated_but_parseable_last_line_is_accepted() {
    // A writer that omits the final newline still produced a whole event.
    let bytes = b"{\"ev\":\"job_arrived\",\"t\":1,\"seq\":0,\"pos\":[0,0]}";
    let loaded = load_trace_bytes(bytes).unwrap();
    assert_eq!(loaded.events, 1);
    assert_eq!(loaded.encoding, TraceEncoding::Jsonl);
    assert!(loaded.text.ends_with('\n'), "text is renormalized");
}

#[test]
fn missing_file_error_names_the_path() {
    let err = load_trace("/nonexistent/cmvrp_x.jsonl").unwrap_err();
    assert!(err.msg.contains("cmvrp_x.jsonl"), "{}", err.msg);
}

#[test]
fn non_utf8_bytes_are_a_scoped_error_not_a_panic() {
    let err = load_trace_bytes(&[0xff, 0xfe, 0xfd]).unwrap_err();
    assert!(!err.msg.is_empty());
}

#[test]
fn binary_trace_normalizes_to_canonical_jsonl() {
    use cmvrp_obs::{BinSink, Event, Sink};
    let mut sink = BinSink::new(Vec::new());
    sink.record(&Event::JobArrived {
        t: 1,
        seq: 0,
        pos: vec![3, 4],
    });
    sink.record(&Event::JobServed {
        t: 1,
        seq: 0,
        vehicle: 9,
        cost: 1,
    });
    let bytes = sink.into_writer().unwrap();
    let loaded = load_trace_bytes(&bytes).unwrap();
    assert_eq!(loaded.encoding, TraceEncoding::Binary);
    assert_eq!(loaded.events, 2);
    assert!(
        loaded.header().contains("encoding CMVB"),
        "{}",
        loaded.header()
    );
    assert!(loaded.text.starts_with("{\"ev\":\"job_arrived\""));
}

#[test]
fn truncated_binary_body_is_a_scoped_error() {
    use cmvrp_obs::{BinSink, Event, Sink};
    let mut sink = BinSink::new(Vec::new());
    sink.record(&Event::JobArrived {
        t: 1,
        seq: 0,
        pos: vec![3, 4],
    });
    let bytes = sink.into_writer().unwrap();
    // Chop the last frame in half: decode must fail cleanly.
    let err = load_trace_bytes(&bytes[..bytes.len() - 2]).unwrap_err();
    assert!(!err.msg.is_empty());
}
