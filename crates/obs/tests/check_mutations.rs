//! Mutation tests for the invariant monitors: each test takes a trace that
//! `trace check` accepts, applies one targeted corruption, and asserts the
//! checker rejects it **naming the right invariant and the right line**.
//! A monitor that accepts its own mutation is a dead monitor — these tests
//! are what keeps the catalog in `cmvrp_obs::check` honest.
//!
//! Two fixture sources:
//! * a hand-built 20-line trace (`base()`) where every line number is
//!   known exactly, and
//! * the committed golden trace under `tests/data/`, mutated textually,
//!   so the end-to-end JSONL schema stays covered too.

use cmvrp_obs::{check_lines, CheckReport, CheckSink, Event, MergeChecker, NullSink, Sink};

/// A minimal clean trace exercising every monitor: a served job, one full
/// Dijkstra–Scholten search (2 queries, 2 replies, zero deficit at
/// completion), the replacement arrival it summons, and a heartbeat pair
/// on one channel (the FIFO reorder target).
fn base() -> Vec<String> {
    [
        r#"{"ev":"fleet_provisioned","t":0,"vehicles":4,"capacity":10}"#, // 1
        r#"{"ev":"job_arrived","t":0,"seq":0,"pos":[1,1]}"#,              // 2
        r#"{"ev":"job_served","t":0,"seq":0,"vehicle":1,"cost":2}"#,      // 3
        r#"{"ev":"diffusion_started","t":1,"initiator":1,"generation":0}"#, // 4
        r#"{"ev":"msg_sent","t":1,"from":1,"to":2,"kind":"query"}"#,      // 5
        r#"{"ev":"msg_sent","t":1,"from":1,"to":3,"kind":"query"}"#,      // 6
        r#"{"ev":"msg_delivered","t":2,"from":1,"to":2,"delay":1,"kind":"query"}"#, // 7
        r#"{"ev":"msg_sent","t":2,"from":2,"to":1,"kind":"reply"}"#,      // 8
        r#"{"ev":"msg_delivered","t":3,"from":1,"to":3,"delay":2,"kind":"query"}"#, // 9
        r#"{"ev":"msg_sent","t":3,"from":3,"to":1,"kind":"reply"}"#,      // 10
        r#"{"ev":"msg_delivered","t":4,"from":2,"to":1,"delay":2,"kind":"reply"}"#, // 11
        r#"{"ev":"msg_delivered","t":5,"from":3,"to":1,"delay":2,"kind":"reply"}"#, // 12
        r#"{"ev":"diffusion_completed","t":5,"initiator":1,"generation":0,"found":true}"#, // 13
        r#"{"ev":"replacement_cycle","t":6,"vehicle":3,"dest":[1,1],"dist":3}"#, // 14
        r#"{"ev":"msg_sent","t":6,"from":0,"to":2,"kind":"heartbeat"}"#,  // 15
        r#"{"ev":"msg_sent","t":7,"from":0,"to":2,"kind":"heartbeat"}"#,  // 16
        r#"{"ev":"msg_delivered","t":8,"from":0,"to":2,"delay":2,"kind":"heartbeat"}"#, // 17
        r#"{"ev":"msg_delivered","t":9,"from":0,"to":2,"delay":2,"kind":"heartbeat"}"#, // 18
        r#"{"ev":"job_arrived","t":9,"seq":1,"pos":[1,1]}"#,              // 19
        r#"{"ev":"job_served","t":9,"seq":1,"vehicle":3,"cost":2}"#,      // 20
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn check(lines: &[String]) -> CheckReport {
    check_lines(lines.iter().map(String::as_str), None).expect("trace must parse")
}

/// Asserts the report rejects the trace with a violation of `invariant`
/// anchored at 1-based `line`.
#[track_caller]
fn assert_rejects(report: &CheckReport, invariant: &str, line: usize) {
    assert!(
        !report.is_clean(),
        "mutation was accepted: expected [{invariant}] at line {line}"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == invariant && v.line == line),
        "expected [{invariant}] at line {line}, got: {:#?}",
        report.violations
    );
}

#[test]
fn base_trace_is_clean() {
    let report = check(&base());
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.events, 20);
    // Every monitor could run: kinds are annotated and capacity is known.
    assert_eq!(report.active, cmvrp_obs::INVARIANTS.to_vec());
}

/// Reordering a FIFO pair: the two heartbeat deliveries on channel 0->2
/// come back swapped. The first delivery then matches the older send and
/// its delay no longer adds up.
#[test]
fn fifo_pair_reorder_rejected() {
    let mut t = base();
    t.swap(16, 17); // 1-based lines 17 and 18
    assert_rejects(&check(&t), "channel-fifo", 17);
}

/// Dropping a reply signal: the second reply delivery to the initiator
/// vanishes, so the computation completes with deficit 1.
#[test]
fn dropped_signal_return_rejected() {
    let mut t = base();
    t[11] = String::new(); // blank 1-based line 12 (line numbering is kept)
    assert_rejects(&check(&t), "ds-deficit", 13);
}

/// Overspending the battery: the replacement vehicle's second job is
/// re-priced so its lifetime energy (3 relocation + 9 service) exceeds
/// the provisioned capacity of 10.
#[test]
fn battery_overspend_rejected() {
    let mut t = base();
    t[19] = t[19].replace("\"cost\":2", "\"cost\":9");
    assert_rejects(&check(&t), "capacity", 20);
}

/// Delivering to a crashed process: process 2 crashes in place of the
/// second heartbeat send, yet a delivery to it still follows.
#[test]
fn delivery_to_crashed_process_rejected() {
    let mut t = base();
    t[15] = r#"{"ev":"process_crashed","t":7,"proc":2}"#.to_string();
    assert_rejects(&check(&t), "crash-silence", 17);
}

/// Simulation time running backwards.
#[test]
fn clock_regression_rejected() {
    let mut t = base();
    t[18] = t[18].replace("\"t\":9", "\"t\":3");
    assert_rejects(&check(&t), "clock", 19);
}

/// Serving the same job twice.
#[test]
fn double_serve_rejected() {
    let mut t = base();
    t[19] = t[19].replace("\"seq\":1", "\"seq\":0");
    assert_rejects(&check(&t), "job-ledger", 20);
}

/// A replacement arrival whose search never succeeded.
#[test]
fn replacement_without_successful_search_rejected() {
    let mut t = base();
    t[12] = t[12].replace("\"found\":true", "\"found\":false");
    assert_rejects(&check(&t), "replacement-liveness", 14);
}

/// A phase span that ends before it starts.
#[test]
fn inverted_span_rejected() {
    let mut t = base();
    t.push(r#"{"ev":"phase_span","name":"route","start_ns":10,"end_ns":5}"#.to_string());
    assert_rejects(&check(&t), "span", 21);
}

// ---- flight-recorder (round_profile) mutations ----

/// The base trace with a two-round, two-worker flight-recorder tail
/// appended (lines 21–24), as `simulate --threads=2 --profile` writes it.
fn base_with_profiles() -> Vec<String> {
    let mut t = base();
    t.extend(
        [
            r#"{"ev":"round_profile","round":1,"worker":0,"workers":2,"busy_ns":100,"barrier_wait_ns":5,"merge_ns":3,"sink_ns":2,"events":4,"steals":0}"#, // 21
            r#"{"ev":"round_profile","round":1,"worker":1,"workers":2,"busy_ns":90,"barrier_wait_ns":15,"merge_ns":3,"sink_ns":2,"events":4,"steals":1}"#, // 22
            r#"{"ev":"round_profile","round":2,"worker":0,"workers":2,"busy_ns":80,"barrier_wait_ns":9,"merge_ns":2,"sink_ns":1,"events":3,"steals":0}"#, // 23
            r#"{"ev":"round_profile","round":2,"worker":1,"workers":2,"busy_ns":85,"barrier_wait_ns":4,"merge_ns":2,"sink_ns":1,"events":3,"steals":0}"#, // 24
        ]
        .into_iter()
        .map(String::from),
    );
    t
}

#[test]
fn profiled_base_trace_is_clean() {
    let report = check(&base_with_profiles());
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.events, 24);
    assert_eq!(report.active, cmvrp_obs::INVARIANTS.to_vec());
}

/// A negative duration in one sample: wall-clock cannot run backwards, so
/// a sign flip is recorder corruption, not measurement noise.
#[test]
fn negative_profile_duration_rejected() {
    let mut t = base_with_profiles();
    t[21] = t[21].replace("\"busy_ns\":90", "\"busy_ns\":-90");
    assert_rejects(&check(&t), "profile", 22);
}

/// A worker id outside the pool the sample itself declares.
#[test]
fn profile_worker_out_of_range_rejected() {
    let mut t = base_with_profiles();
    t[22] = t[22].replace("\"worker\":0", "\"worker\":7");
    assert_rejects(&check(&t), "profile", 23);
}

/// A worker's round number running backwards: the coordinator emits
/// strictly increasing rounds, so a regression means samples were lost,
/// duplicated, or reordered.
#[test]
fn non_monotone_profile_round_rejected() {
    let mut t = base_with_profiles();
    t[23] = t[23].replace("\"round\":2", "\"round\":1");
    assert_rejects(&check(&t), "profile", 24);
}

// ---- inline (per-shard) agreement with the offline checker ----

/// Replays `lines` through a shard-configured inline [`CheckSink`] —
/// capacity seeded, gap-tolerant job ledger, no `fleet_provisioned`
/// header — exactly how the sharded engine wires each shard's checker —
/// and returns the invariant names it reports.
fn inline_shard_violations(lines: &[String]) -> Vec<&'static str> {
    let mut sink = CheckSink::new(NullSink);
    sink.checker_mut().set_capacity(10);
    sink.checker_mut().allow_seq_gaps();
    for line in lines {
        if line.trim().is_empty() || line.contains("\"ev\":\"fleet_provisioned\"") {
            continue;
        }
        sink.record(&Event::from_json(line).expect("event must parse"));
    }
    let (mut checker, _) = sink.into_parts();
    checker.finish();
    checker.violations().iter().map(|v| v.invariant).collect()
}

/// Every shard-visible mutation above must be rejected by the inline
/// per-shard checker with the **same invariant name** the offline
/// `trace check` reports — `simulate --threads=N --check` and a later
/// offline pass over the written trace must never disagree on what broke.
#[test]
fn inline_shard_checker_agrees_with_offline_on_shard_visible_mutations() {
    type Mutation = fn(&mut Vec<String>);
    let mutations: Vec<(&'static str, Mutation)> = vec![
        ("channel-fifo", |t| t.swap(16, 17)),
        ("ds-deficit", |t| t[11] = String::new()),
        ("capacity", |t| {
            t[19] = t[19].replace("\"cost\":2", "\"cost\":9")
        }),
        ("crash-silence", |t| {
            t[15] = r#"{"ev":"process_crashed","t":7,"proc":2}"#.to_string()
        }),
        ("clock", |t| t[18] = t[18].replace("\"t\":9", "\"t\":3")),
        ("job-ledger", |t| {
            t[19] = t[19].replace("\"seq\":1", "\"seq\":0")
        }),
        ("replacement-liveness", |t| {
            t[12] = t[12].replace("\"found\":true", "\"found\":false")
        }),
        ("span", |t| {
            t.push(r#"{"ev":"phase_span","name":"route","start_ns":10,"end_ns":5}"#.to_string())
        }),
    ];
    for (invariant, mutate) in mutations {
        let mut t = base();
        mutate(&mut t);
        let offline = check(&t);
        assert!(
            offline.violations.iter().any(|v| v.invariant == invariant),
            "offline checker missed [{invariant}]: {:#?}",
            offline.violations
        );
        let inline = inline_shard_violations(&t);
        assert!(
            inline.contains(&invariant),
            "inline shard checker missed [{invariant}], got {inline:?}"
        );
    }
}

/// The one corruption the gap-tolerant shard view *cannot* see — a forward
/// jump in the globally assigned sequence numbers — is exactly what the
/// merge-time checker exists for.
#[test]
fn seq_gap_mutation_is_caught_at_the_merge_not_the_shard() {
    let mut t = base();
    t[18] = t[18].replace("\"seq\":1", "\"seq\":5");
    t[19] = t[19].replace("\"seq\":1", "\"seq\":5");
    // Shard-local view: strictly increasing, gaps allowed — accepted.
    assert_eq!(inline_shard_violations(&t), Vec::<&str>::new());
    // Merge view: arrivals must come out contiguous — rejected.
    let mut merge = MergeChecker::new();
    for line in &t {
        merge.observe(&Event::from_json(line).expect("event must parse"));
    }
    assert!(
        merge
            .violations()
            .iter()
            .any(|v| v.invariant == "job-ledger"),
        "{:#?}",
        merge.violations()
    );
}

// ---- golden-trace mutations (end-to-end over the committed fixture) ----

fn golden() -> Vec<String> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/golden_point.jsonl"
    );
    std::fs::read_to_string(path)
        .expect("golden trace missing; regenerate with scripts/check.sh")
        .lines()
        .map(String::from)
        .collect()
}

#[test]
fn golden_trace_is_clean() {
    let t = golden();
    let report = check(&t);
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.events as usize, t.len());
    assert_eq!(report.active, cmvrp_obs::INVARIANTS.to_vec());
}

/// Swapping the first send with the first delivery puts a delivery on the
/// wire before anything was sent on that channel.
#[test]
fn golden_send_delivery_swap_rejected() {
    let mut t = golden();
    let i = t
        .iter()
        .position(|l| l.contains("\"ev\":\"msg_sent\""))
        .unwrap();
    let j = t
        .iter()
        .position(|l| l.contains("\"ev\":\"msg_delivered\""))
        .unwrap();
    assert!(i < j);
    t.swap(i, j);
    assert_rejects(&check(&t), "channel-fifo", i + 1);
}

/// Re-pricing one real job far beyond the provisioned capacity.
#[test]
fn golden_overspend_rejected() {
    let mut t = golden();
    let i = t
        .iter()
        .position(|l| l.contains("\"ev\":\"job_served\""))
        .unwrap();
    t[i] = t[i].replace("\"cost\":1", "\"cost\":99999");
    assert_ne!(t[i], golden()[i], "mutation must change the line");
    assert_rejects(&check(&t), "capacity", i + 1);
}

/// A violation detected by `check_lines` must arrive with its causal
/// chain: the happens-before ancestors of the offending event, so the
/// report explains *how the run got there*, not just where it broke.
#[test]
fn golden_violation_carries_its_causal_chain() {
    let mut t = golden();
    // Re-serve a replacement-summoned job so the chain is non-trivial:
    // move sent -> move delivered -> replacement cycle -> arrival -> serve.
    let i = t
        .iter()
        .position(|l| l.contains("\"ev\":\"job_served\"") && l.contains("\"seq\":101"))
        .unwrap();
    let dup = t[i].clone();
    t.insert(i + 1, dup);
    let report = check(&t);
    assert_rejects(&report, "job-ledger", i + 2);
    let v = report
        .violations
        .iter()
        .find(|v| v.invariant == "job-ledger")
        .unwrap();
    assert!(!v.chain.is_empty(), "violation arrived without a chain");
    let chain = v.chain.join("\n");
    assert!(chain.contains("\"kind\":\"move\""), "{chain}");
    assert!(chain.contains("replacement_cycle"), "{chain}");
    assert!(chain.contains("\"seq\":101"), "{chain}");
    // The rendered violation shows the chain to the user.
    assert!(v.to_string().contains("caused by:"), "{v}");
}
